//! Pinned end-to-end estimate fingerprints.
//!
//! The determinism tests in `engine_determinism.rs` prove cached ≡ legacy
//! and thread-count independence, but both sides of those comparisons run
//! the *current* code — a change that moves the RNG draw sequence (a
//! perturbation rewrite, a sampler "optimization" that consumes the stream
//! differently) would slip through them by moving both sides at once.
//! These values were captured from the pre-packed-pipeline build (PR 4)
//! and pin the absolute bits: any engine revision must keep producing
//! exactly these estimates for these seeds, per the draw-sequence
//! compatibility contract in `ldp::randomized_response`.
//!
//! If one of these assertions ever fires, the change is *not* draw-for-draw
//! compatible — that is a contract break to be called out loudly in review,
//! not a baseline to be silently re-recorded.

use bigraph::{BipartiteGraph, Layer};
use cne::batch::BatchSingleSource;
use cne::{AlgorithmKind, EstimationEngine, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `engine_determinism` graph: 40 users over 256 items, degrees 4..124.
fn dense_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..40u32 {
        let degree = 4 + (u * 3) % 120;
        for k in 0..degree {
            edges.push((u, (u * 37 + k * 5) % 256));
        }
    }
    BipartiteGraph::from_edges(40, 256, edges).unwrap()
}

#[test]
fn engine_estimates_are_pinned_across_revisions() {
    let g = dense_graph();
    let engine = EstimationEngine::new(&g);
    let q = Query::new(Layer::Upper, 3, 17);
    // (kind, seed, estimate bits) captured on the PR-4 build at ε = 2.
    let pinned: &[(AlgorithmKind, u64, u64)] = &[
        (AlgorithmKind::Naive, 1, 0x4026000000000000),
        (AlgorithmKind::Naive, 77, 0x4030000000000000),
        (AlgorithmKind::OneR, 1, 0x4009f8361a125b1d),
        (AlgorithmKind::OneR, 77, 0x4027526d8d118ad3),
        (AlgorithmKind::MultiRSS, 1, 0x40102da1a73cc032),
        (AlgorithmKind::MultiRSS, 77, 0xbff76f9e02cfdf2a),
        (AlgorithmKind::MultiRDSBasic, 1, 0x401d8392d93a911f),
        (AlgorithmKind::MultiRDSBasic, 77, 0x4013a6eb929253e8),
        (AlgorithmKind::MultiRDS, 1, 0x4001c4d2e9918546),
        (AlgorithmKind::MultiRDS, 77, 0xc0056a89d59ebf9d),
        (AlgorithmKind::MultiRDSStar, 1, 0x401185deb81d10de),
        (AlgorithmKind::MultiRDSStar, 77, 0x400fdc49416634cc),
        (AlgorithmKind::CentralDP, 1, 0x4015f3c4121b55df),
        (AlgorithmKind::CentralDP, 77, 0x4013638745a17022),
    ];
    for &(kind, seed, bits) in pinned {
        let mut rng = StdRng::seed_from_u64(seed);
        let report = engine.estimate(&q, kind, 2.0, &mut rng).unwrap();
        assert_eq!(
            report.estimate.to_bits(),
            bits,
            "{kind} seed {seed}: estimate moved off the pinned PR-4 value \
             ({} vs pinned {})",
            report.estimate,
            f64::from_bits(bits),
        );
    }
}

#[test]
fn laplace_heavy_estimates_are_pinned() {
    // ε = 0.5 pushes the round-2 Laplace scale up by an order of magnitude,
    // so these bits are dominated by the Laplace draws — the regime that
    // would move first if the block uniform refill or the batched per-user
    // stream seeding ever drifted off the scalar draw sequence.
    let g = dense_graph();
    let engine = EstimationEngine::new(&g);
    let q = Query::new(Layer::Upper, 3, 17);
    let pinned: &[(AlgorithmKind, u64, u64)] = &[
        (AlgorithmKind::MultiRSS, 1, 0x403cad2800956cff),
        (AlgorithmKind::MultiRSS, 77, 0x40311368bbce094a),
        (AlgorithmKind::MultiRDSBasic, 1, 0x402b0bc1419c018b),
        (AlgorithmKind::MultiRDSBasic, 77, 0xc02633d5e74d997f),
        (AlgorithmKind::MultiRDS, 1, 0xc022f96a1363556c),
        (AlgorithmKind::MultiRDS, 77, 0x401b47f8412916dd),
        (AlgorithmKind::MultiRDSStar, 1, 0x402c55bdb8c0fdb6),
        (AlgorithmKind::MultiRDSStar, 77, 0x4014f09e8c4355d6),
    ];
    for &(kind, seed, bits) in pinned {
        let mut rng = StdRng::seed_from_u64(seed);
        let report = engine.estimate(&q, kind, 0.5, &mut rng).unwrap();
        assert_eq!(
            report.estimate.to_bits(),
            bits,
            "{kind} seed {seed} eps 0.5: Laplace-heavy estimate moved off the pinned value \
             ({} vs pinned {})",
            report.estimate,
            f64::from_bits(bits),
        );
    }
}

#[test]
fn batch_estimates_are_pinned_across_revisions() {
    let g = dense_graph();
    let candidates: Vec<u32> = (1..40).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let report = BatchSingleSource::default()
        .estimate_batch(&g, Layer::Upper, 0, &candidates, 2.0, &mut rng)
        .unwrap();
    // FNV-style fold of all 39 estimate bit patterns, captured on PR 4.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for e in &report.estimates {
        h ^= e.estimate.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    assert_eq!(
        h, 0x51c9_178d_7f33_0962,
        "batch estimate stream moved off the pinned PR-4 fingerprint"
    );
}

#[test]
fn snapshot_loaded_engine_reproduces_the_pinned_estimates() {
    // A snapshot round-trip must be invisible to the protocol: an engine
    // adopted from serialized bytes (graph CSR + pre-packed dense bitmaps
    // installed straight into the adjacency cache) has to hit the exact
    // PR-4 bit patterns a text-built engine is pinned to — including the
    // full-batch FNV fingerprint, whose 39 estimates traverse both the
    // cached-bitmap and scratch-packing paths.
    let g = dense_graph();
    let bytes = bigraph::GraphSnapshot::capture(&g, 0).to_bytes();
    let snap = bigraph::GraphSnapshot::from_bytes(&bytes).unwrap();
    let engine = EstimationEngine::from_snapshot(&snap);
    assert!(
        engine.store().cached_count(Layer::Upper) > 0,
        "snapshot adoption should pre-populate the warm store"
    );

    let q = Query::new(Layer::Upper, 3, 17);
    let pinned: &[(AlgorithmKind, u64, u64)] = &[
        (AlgorithmKind::Naive, 1, 0x4026000000000000),
        (AlgorithmKind::OneR, 1, 0x4009f8361a125b1d),
        (AlgorithmKind::MultiRSS, 77, 0xbff76f9e02cfdf2a),
        (AlgorithmKind::MultiRDSBasic, 1, 0x401d8392d93a911f),
        (AlgorithmKind::MultiRDS, 77, 0xc0056a89d59ebf9d),
        (AlgorithmKind::MultiRDSStar, 1, 0x401185deb81d10de),
        (AlgorithmKind::CentralDP, 77, 0x4013638745a17022),
    ];
    for &(kind, seed, bits) in pinned {
        let mut rng = StdRng::seed_from_u64(seed);
        let report = engine.estimate(&q, kind, 2.0, &mut rng).unwrap();
        assert_eq!(
            report.estimate.to_bits(),
            bits,
            "{kind} seed {seed}: snapshot-loaded engine moved off the pinned value",
        );
    }

    let candidates: Vec<u32> = (1..40).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let report = BatchSingleSource::default()
        .estimate_batch(engine.graph(), Layer::Upper, 0, &candidates, 2.0, &mut rng)
        .unwrap();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for e in &report.estimates {
        h ^= e.estimate.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    assert_eq!(
        h, 0x51c9_178d_7f33_0962,
        "batch estimates over a snapshot-loaded graph moved off the pinned fingerprint"
    );
}

#[test]
fn sparse_large_universe_estimates_are_pinned() {
    // The skip-sampling regime the perturbation pipeline targets: tiny
    // degrees over a 100k universe, at both gate budgets (ε = 1 exercises
    // the threshold tables, ε = 4 the ln tail).
    let edges = (0..8u32)
        .map(|v| (0u32, v))
        .chain((4..12u32).map(|v| (1u32, v)));
    let g = BipartiteGraph::from_edges(2, 100_000, edges).unwrap();
    let engine = EstimationEngine::new(&g);
    let q = Query::new(Layer::Upper, 0, 1);
    let pinned: &[(AlgorithmKind, f64, u64)] = &[
        (AlgorithmKind::OneR, 1.0, 0xc07d4f1e911c6980),
        (AlgorithmKind::MultiRSS, 1.0, 0x4025494bf9903ac4),
        (AlgorithmKind::MultiRDSBasic, 1.0, 0x401e80acd323d509),
        (AlgorithmKind::OneR, 4.0, 0xc004499ee48933f0),
        (AlgorithmKind::MultiRSS, 4.0, 0x40143d60babdcc10),
        (AlgorithmKind::MultiRDSBasic, 4.0, 0x4012384f1129ef5d),
    ];
    for &(kind, eps, bits) in pinned {
        let mut rng = StdRng::seed_from_u64(99);
        let report = engine.estimate(&q, kind, eps, &mut rng).unwrap();
        assert_eq!(
            report.estimate.to_bits(),
            bits,
            "{kind} eps {eps}: sparse-regime estimate moved off the pinned PR-4 value",
        );
    }
}

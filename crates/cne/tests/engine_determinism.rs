//! Regression tests for the engine's determinism contract.
//!
//! Two properties must never drift (see `cne::engine` module docs):
//!
//! 1. **Cache transparency** — a seeded run through a warm
//!    [`cne::EstimationEngine`] produces a byte-identical report to the
//!    legacy uncached path, for every algorithm and for the batch protocol.
//! 2. **Thread-count independence** — the sharded
//!    [`cne::EstimationEngine::estimate_many_targets`] fan-out produces
//!    byte-identical output under `RAYON_NUM_THREADS=1` and `=4`.

use bigraph::{BipartiteGraph, Layer};
use cne::batch::{user_stream_seed, BatchReport, BatchSingleSource};
use cne::{
    AlgorithmKind, CentralDP, CommonNeighborEstimator, EstimationEngine, MultiRDS, MultiRDSBasic,
    MultiRDSStar, MultiRSS, Naive, OneR, Query,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::to_string as to_json;

/// A graph large and dense enough that the batch path crosses the packed
/// (cache-hitting) dispatch threshold for some candidates: 40 upper users
/// over 256 items (4 packed words), with degrees from 4 to ~120.
fn dense_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..40u32 {
        let degree = 4 + (u * 3) % 120;
        for k in 0..degree {
            edges.push((u, (u * 37 + k * 5) % 256));
        }
    }
    BipartiteGraph::from_edges(40, 256, edges).unwrap()
}

/// Full-report byte-level fingerprint: estimate bits plus the serialized
/// accounting artifacts (budget ledger + transcript).
fn fingerprint(report: &cne::EstimateReport) -> (u64, String, String) {
    (
        report.estimate.to_bits(),
        to_json(&report.budget).unwrap(),
        to_json(&report.transcript).unwrap(),
    )
}

fn batch_fingerprint(report: &BatchReport) -> (Vec<u64>, String, String) {
    (
        report
            .estimates
            .iter()
            .map(|e| e.estimate.to_bits())
            .collect(),
        to_json(&report.budget).unwrap(),
        to_json(&report.transcript).unwrap(),
    )
}

#[test]
fn engine_cached_and_legacy_uncached_reports_are_byte_identical() {
    let g = dense_graph();
    let engine = EstimationEngine::new(&g);
    engine.warm(Layer::Upper); // warm cache must change nothing
    let q = Query::new(Layer::Upper, 3, 17);
    let estimators: Vec<Box<dyn CommonNeighborEstimator>> = vec![
        Box::new(Naive),
        Box::new(OneR::default()),
        Box::new(MultiRSS::default()),
        Box::new(MultiRDSBasic::default()),
        Box::new(MultiRDS::default()),
        Box::new(MultiRDSStar),
        Box::new(CentralDP),
    ];
    for est in &estimators {
        for seed in [1u64, 77, 2024] {
            let mut rng_legacy = StdRng::seed_from_u64(seed);
            let mut rng_engine = StdRng::seed_from_u64(seed);
            let legacy = est.estimate(&g, &q, 2.0, &mut rng_legacy).unwrap();
            let cached = engine
                .estimate(&q, est.kind(), 2.0, &mut rng_engine)
                .unwrap();
            assert_eq!(
                fingerprint(&legacy),
                fingerprint(&cached),
                "{} seed {seed}: cached engine run must be byte-identical to the legacy path",
                est.kind()
            );
        }
    }
}

#[test]
fn engine_batch_and_legacy_batch_are_byte_identical() {
    let g = dense_graph();
    let engine = EstimationEngine::new(&g);
    let candidates: Vec<u32> = (1..40).collect();
    for seed in [5u64, 91] {
        let mut rng_legacy = StdRng::seed_from_u64(seed);
        let mut rng_engine = StdRng::seed_from_u64(seed);
        let legacy = BatchSingleSource::default()
            .estimate_batch(&g, Layer::Upper, 0, &candidates, 2.0, &mut rng_legacy)
            .unwrap();
        let cached = engine
            .estimate_batch(Layer::Upper, 0, &candidates, 2.0, &mut rng_engine)
            .unwrap();
        assert_eq!(batch_fingerprint(&legacy), batch_fingerprint(&cached));
    }
    // The dense graph must actually exercise the cache, or this test proves
    // nothing about cache transparency.
    assert!(
        engine.store().cached_count(Layer::Upper) > 0,
        "expected at least one candidate dense enough to hit the adjacency cache"
    );
}

#[test]
fn many_targets_is_byte_identical_across_thread_counts() {
    // The per-shard streams are keyed by (seed, target id) and the per-user
    // streams inside a shard by (base, candidate id) — never by thread
    // assignment — so forcing different worker counts must not change a bit.
    //
    // NOTE: this relies on the vendored rayon stub reading RAYON_NUM_THREADS
    // on every call; real rayon latches it at global-pool init, so on a
    // future swap to the real crate this test must move to an explicit
    // `ThreadPoolBuilder` (same caveat as the eval runner's test).
    let g = dense_graph();
    let engine = EstimationEngine::new(&g);
    let targets: Vec<u32> = (0..8).collect();
    let candidates: Vec<u32> = (0..40).collect();
    let run = || {
        engine
            .estimate_many_targets(Layer::Upper, &targets, &candidates, 2.0, 1234)
            .unwrap()
            .iter()
            .map(batch_fingerprint)
            .collect::<Vec<_>>()
    };
    // Process-global env mutation: restore on drop so a failing assert
    // cannot leak the override into concurrently running tests (which
    // tolerate a transient change by the very property under test).
    struct RestoreEnv;
    impl Drop for RestoreEnv {
        fn drop(&mut self) {
            std::env::remove_var("RAYON_NUM_THREADS");
        }
    }
    let _restore = RestoreEnv;
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run();
    assert_eq!(serial, parallel);
}

#[test]
fn many_targets_shards_match_single_target_batches() {
    // Placement independence: each shard equals a standalone estimate_batch
    // run on the mix(seed, target) stream, so sharding across processes or
    // machines composes trivially.
    let g = dense_graph();
    let engine = EstimationEngine::new(&g);
    let targets = [2u32, 9, 30];
    let candidates: Vec<u32> = (0..20).collect();
    let seed = 777u64;
    let reports = engine
        .estimate_many_targets(Layer::Upper, &targets, &candidates, 2.0, seed)
        .unwrap();
    for report in &reports {
        let shard: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&w| w != report.target)
            .collect();
        let mut rng = StdRng::seed_from_u64(user_stream_seed(seed, u64::from(report.target)));
        let direct = engine
            .estimate_batch(Layer::Upper, report.target, &shard, 2.0, &mut rng)
            .unwrap();
        assert_eq!(batch_fingerprint(report), batch_fingerprint(&direct));
    }
}

#[test]
fn all_algorithm_kinds_are_servable() {
    let g = dense_graph();
    let engine = EstimationEngine::new(&g);
    let q = Query::new(Layer::Upper, 0, 1);
    for kind in [
        AlgorithmKind::Naive,
        AlgorithmKind::OneR,
        AlgorithmKind::MultiRSS,
        AlgorithmKind::MultiRDSBasic,
        AlgorithmKind::MultiRDS,
        AlgorithmKind::MultiRDSStar,
        AlgorithmKind::CentralDP,
    ] {
        let mut rng = StdRng::seed_from_u64(9);
        let report = engine.estimate(&q, kind, 2.0, &mut rng).unwrap();
        assert_eq!(report.algorithm, kind);
        assert!(report.estimate.is_finite());
    }
}

//! Top-k most similar users under edge LDP, using the batch protocol.
//!
//! Running MultiR-SS once per candidate would multiply the target user's
//! privacy cost by the number of candidates. The batch single-source protocol
//! uploads the target's randomized responses once and lets every candidate
//! build its estimator locally, so each vertex spends exactly ε no matter how
//! many candidates are screened.
//!
//! Run with `cargo run --release --example topk_similar_users`.

use bigraph::{common_neighbors, Layer};
use cne::engine::EstimationEngine;
use cne::similarity::SimilarityEstimator;
use cne::Query;
use datasets::{Catalog, DatasetCode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let catalog = Catalog::scaled(50_000);
    let dataset = catalog
        .generate(DatasetCode::BX, 17)
        .expect("BX profile exists");
    let graph = &dataset.graph;
    println!(
        "Bookcrossing-like graph: {} users, {} books, {} ratings",
        graph.n_upper(),
        graph.n_lower(),
        graph.n_edges()
    );

    // Target: the highest-degree user; candidates: the next 30 by degree.
    let mut users: Vec<u32> = (0..graph.n_upper() as u32)
        .filter(|&u| graph.degree(Layer::Upper, u) > 0)
        .collect();
    users.sort_by_key(|&u| std::cmp::Reverse(graph.degree(Layer::Upper, u)));
    let target = users[0];
    let candidates: Vec<u32> = users[1..].iter().copied().take(30).collect();
    println!(
        "target user u{target} (degree {}), screening {} candidates, eps = 2 per vertex\n",
        graph.degree(Layer::Upper, target),
        candidates.len()
    );

    // Build the persistent engine once; its packed-adjacency cache is shared
    // by every query below (and would be by the next million, too).
    let engine = EstimationEngine::new(graph);

    // Batch common-neighbor estimates: one RR upload by the target, one
    // estimator upload per candidate.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let batch = engine
        .estimate_batch(Layer::Upper, target, &candidates, 2.0, &mut rng)
        .expect("batch estimation succeeds");

    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "candidate", "true C2", "estimated C2", "true rank?"
    );
    let mut true_ranked: Vec<(u32, u64)> = candidates
        .iter()
        .map(|&w| {
            (
                w,
                common_neighbors::count(graph, Layer::Upper, target, w).expect("valid pair"),
            )
        })
        .collect();
    true_ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let true_top5: Vec<u32> = true_ranked.iter().take(5).map(|&(w, _)| w).collect();

    for est in batch.ranked().iter().take(10) {
        let truth =
            common_neighbors::count(graph, Layer::Upper, target, est.candidate).expect("valid");
        println!(
            "u{:<9} {:>10} {:>14.2} {:>12}",
            est.candidate,
            truth,
            est.estimate,
            if true_top5.contains(&est.candidate) {
                "top-5"
            } else {
                ""
            }
        );
    }
    println!(
        "\nprivacy spent per vertex: {:.2}; total communication: {} bytes",
        batch.budget.consumed(),
        batch.communication_bytes()
    );

    // Follow up on the best candidate with a full Jaccard-similarity estimate.
    if let Some(best) = batch.ranked().first() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let report = SimilarityEstimator::jaccard()
            .estimate(
                graph,
                &Query::new(Layer::Upper, target, best.candidate),
                2.0,
                &mut rng,
            )
            .expect("similarity estimation succeeds");
        let true_jaccard =
            common_neighbors::jaccard(graph, Layer::Upper, target, best.candidate).expect("valid");
        println!(
            "\nbest candidate u{}: estimated Jaccard {:.4} (true {:.4})",
            best.candidate, report.similarity, true_jaccard
        );
    }

    // The same warm engine serves many targets at once: the three biggest
    // hubs are screened against the whole candidate pool, sharded over all
    // cores with one deterministic RNG stream per target.
    let hubs: Vec<u32> = users.iter().copied().take(3).collect();
    let reports = engine
        .estimate_many_targets(Layer::Upper, &hubs, &candidates, 2.0, 42)
        .expect("sharded batch estimation succeeds");
    println!("\nSharded multi-target screening (eps = 2 per vertex per target):");
    for report in &reports {
        let best = report.ranked().into_iter().next().expect("candidates");
        println!(
            "  target u{:<6} best match u{:<6} (estimated C2 {:.2}, {} candidates)",
            report.target,
            best.candidate,
            best.estimate,
            report.estimates.len()
        );
    }
}

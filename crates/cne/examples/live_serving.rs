//! Live serving: queries never wait on a splice.
//!
//! [`streaming_recommendation`](../examples/streaming_recommendation.rs)
//! interleaves ingestion and queries on one thread — between rounds, the
//! world stops while `apply_updates` splices the CSR. This example runs
//! the same workload through a [`ServingEngine`]: producer threads append
//! edge events to the engine's sharded update log *while* reader threads
//! screen candidates through epoch-pinned snapshots, and a dedicated
//! writer thread coalesces everything pending into one merge pass per
//! publish.
//!
//! What to watch in the output:
//!
//! * readers report **QPS** — no query round ever blocks on a merge, so
//!   throughput stays flat whether or not the stream is bursting;
//! * readers report **snapshot lag** — how many appended deltas were not
//!   yet visible at the pinned epoch. Lag is bounded by the writer's
//!   cadence (and drains to zero at `flush`), which is the freshness ↔
//!   throughput trade the serving tier makes explicit;
//! * the final stats line shows epochs published vs deltas appended: the
//!   writer published far fewer times than it ingested batches, because a
//!   publish coalesces every delta that arrived since the last one.
//!
//! Run with `cargo run --release --example live_serving`.

use bigraph::{GraphDelta, Layer};
use cne::serving::{ServingConfig, ServingEngine};
use datasets::{Catalog, DatasetCode};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::thread;
use std::time::{Duration, Instant};

const EPSILON: f64 = 2.0;
const PRODUCERS: usize = 2;
const READERS: usize = 2;
const EVENTS_PER_PRODUCER: usize = 6_000;
const BURST: usize = 100;
const QUERY_ROUNDS_PER_READER: usize = 120;

fn main() {
    // A synthetic Movielens-like user–movie graph as the starting state.
    let catalog = Catalog::scaled(50_000);
    let dataset = catalog
        .generate(DatasetCode::ML, 7)
        .expect("ML profile exists");
    let n_upper = dataset.graph.n_upper();
    let n_lower = dataset.graph.n_lower();
    println!(
        "Dataset {}: |U|={}, |L|={}, |E|={}",
        dataset.code,
        n_upper,
        n_lower,
        dataset.graph.n_edges()
    );

    let target = (0..n_upper as u32)
        .max_by_key(|&u| dataset.graph.degree(Layer::Upper, u))
        .expect("non-empty layer");
    let candidates: Vec<u32> = (0..n_upper as u32)
        .filter(|&u| u != target && dataset.graph.degree(Layer::Upper, u) > 0)
        .collect();

    let serving = ServingEngine::with_config(
        dataset.graph,
        ServingConfig {
            warm_layer: Some(Layer::Upper),
            poll_interval: Duration::from_millis(2),
            ..ServingConfig::default()
        },
    );
    let start = Instant::now();
    let (queries, lag_sum, lag_max) = thread::scope(|s| {
        // --- Producers: a continuous 3:1 add/retire edge stream. --------
        for p in 0..PRODUCERS {
            let serving = &serving;
            s.spawn(move || {
                let mut traffic = ChaCha8Rng::seed_from_u64(404 + p as u64);
                for burst in 0..EVENTS_PER_PRODUCER / BURST {
                    serving.extend((0..BURST).map(|_| {
                        let upper = traffic.gen_range(0..n_upper as u32);
                        let lower = traffic.gen_range(0..n_lower as u32);
                        if traffic.gen_range(0..4) < 3 {
                            GraphDelta::AddEdge { upper, lower }
                        } else {
                            GraphDelta::RemoveEdge { upper, lower }
                        }
                    }));
                    // Pace the stream so it overlaps the query window.
                    if burst % 8 == 7 {
                        thread::sleep(Duration::from_millis(1));
                    }
                }
            });
        }

        // --- Readers: screen the candidate set via pinned snapshots. ----
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let serving = &serving;
                let candidates = &candidates;
                s.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(99 + r as u64);
                    let mut lag_sum = 0u64;
                    let mut lag_max = 0u64;
                    let t0 = Instant::now();
                    for round in 0..QUERY_ROUNDS_PER_READER {
                        let snap = serving.snapshot();
                        let report = snap
                            .estimate_batch(Layer::Upper, target, candidates, EPSILON, &mut rng)
                            .expect("serving snapshot is always current");
                        let lag = serving.stats().ingest_lag;
                        lag_sum += lag;
                        lag_max = lag_max.max(lag);
                        if r == 0 && round % 30 == 0 {
                            let best = report.ranked()[0];
                            println!(
                                "  reader0 round {round:>2}: epoch {} gen {} lag {lag:>5} \
                                 | best match u{} (C2 ≈ {:.1})",
                                snap.epoch(),
                                snap.generation(),
                                best.candidate,
                                best.estimate,
                            );
                        }
                    }
                    let elapsed = t0.elapsed();
                    (QUERY_ROUNDS_PER_READER, elapsed, lag_sum, lag_max)
                })
            })
            .collect();

        let mut queries = 0usize;
        let mut lag_sum = 0u64;
        let mut lag_max = 0u64;
        for handle in readers {
            let (rounds, elapsed, sum, max) = handle.join().expect("reader thread");
            println!(
                "reader finished: {rounds} rounds in {elapsed:.2?} \
                 ({:.1} queries/s, never blocked on a splice)",
                rounds as f64 / elapsed.as_secs_f64()
            );
            queries += rounds;
            lag_sum += sum;
            lag_max = lag_max.max(max);
        }
        (queries, lag_sum, lag_max)
    });
    let serve_window = start.elapsed();

    // Drain what the stream left behind; the live buffer is now current.
    serving.flush();
    let stats = serving.stats();
    println!(
        "\nServed {queries} query rounds in {serve_window:.2?} ({:.1} QPS aggregate) \
         while ingesting {} deltas",
        queries as f64 / serve_window.as_secs_f64(),
        stats.appended,
    );
    println!(
        "Snapshot lag: mean {:.0} deltas, p50 {} / p95 {} (log2 buckets over {} snapshots), \
         max {lag_max} (0 after flush: published={})",
        lag_sum as f64 / queries as f64,
        stats.lag_p50,
        stats.lag_p95,
        stats.snapshots,
        stats.published,
    );
    println!(
        "Writer: {} epochs published for {} appended deltas ({} rejected) — \
         one coalesced merge pass per publish",
        stats.epoch, stats.appended, stats.rejected,
    );

    // Hand the graph back to single-owner workflows (checkpointing etc.).
    let engine = serving.into_engine();
    println!(
        "Final graph after teardown: |E|={} at generation {}",
        engine.graph().n_edges(),
        engine.generation()
    );
}

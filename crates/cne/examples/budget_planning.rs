//! Planning a privacy budget with the analytic loss model.
//!
//! Before deploying a privacy-preserving similarity feature, an engineer wants
//! to know what accuracy to expect for a given `ε` and query-vertex degrees —
//! and how MultiR-DS will split its budget. The closed-form loss model and the
//! optimiser answer both questions without touching any data.
//!
//! This example reproduces the shape of the paper's Fig. 5 and prints the
//! optimiser's decisions for a range of degree profiles.
//!
//! Run with `cargo run --example budget_planning`.

use cne::loss::{double_source_l2, single_source_l2};
use cne::optimizer::{optimal_alpha, optimize_double_source};

fn main() {
    let epsilon = 2.0;

    // --- Fig. 5 style curves: loss of f* as a function of eps1 -------------
    for (du, dw) in [(5.0, 10.0), (5.0, 100.0)] {
        println!("L2 loss of the double-source estimator, d_u={du}, d_w={dw}, eps={epsilon}");
        println!(
            "{:>6} | {:>12} {:>12} {:>12} {:>12}",
            "eps1", "alpha=1", "alpha=0", "alpha=0.5", "alpha=alpha*"
        );
        let global = optimize_double_source(du, dw, epsilon);
        for i in 1..=9 {
            let e1 = epsilon * i as f64 / 10.0;
            let e2 = epsilon - e1;
            let a_star = optimal_alpha(du, dw, e1, e2);
            println!(
                "{:>6.2} | {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                e1,
                double_source_l2(du, dw, 1.0, e1, e2),
                double_source_l2(du, dw, 0.0, e1, e2),
                double_source_l2(du, dw, 0.5, e1, e2),
                double_source_l2(du, dw, a_star, e1, e2),
            );
        }
        println!(
            "global minimum: loss {:.2} at eps1 = {:.3}, alpha = {:.3}\n",
            global.loss, global.epsilon1, global.alpha
        );
    }

    // --- How the optimiser reacts to degree profiles ------------------------
    println!("Optimiser decisions for epsilon = {epsilon}:");
    println!(
        "{:>8} {:>8} | {:>8} {:>8} {:>8} | {:>14} {:>14}",
        "d_u", "d_w", "eps1*", "eps2*", "alpha*", "loss(f*)", "loss(SS even)"
    );
    for (du, dw) in [
        (2.0, 2.0),
        (5.0, 10.0),
        (5.0, 100.0),
        (5.0, 1000.0),
        (100.0, 100.0),
        (1000.0, 1000.0),
    ] {
        let opt = optimize_double_source(du, dw, epsilon);
        let ss_even = single_source_l2(du.min(dw), epsilon / 2.0, epsilon / 2.0);
        println!(
            "{:>8} {:>8} | {:>8.3} {:>8.3} {:>8.3} | {:>14.2} {:>14.2}",
            du, dw, opt.epsilon1, opt.epsilon2, opt.alpha, opt.loss, ss_even
        );
    }

    println!("\nReadings:");
    println!(" * imbalanced degrees push alpha towards the low-degree vertex;");
    println!(" * large degrees push more budget into the randomized-response round;");
    println!(" * the optimised double-source loss never exceeds the best single source.");
}

//! Privacy-preserving co-location estimation for contact tracing.
//!
//! A people–location bipartite graph records which places each person visited.
//! Health authorities want to know how many places two people have in common
//! (a proxy for contact risk) without collecting anyone's raw location
//! history. Each person's visit list stays on their device; only randomized
//! responses and noisy estimators are uploaded.
//!
//! Run with `cargo run --example contact_tracing`.

use bigraph::{sampling, Layer};
use cne::{CommonNeighborEstimator, MultiRDS, MultiRSS, OneR, Query};
use datasets::{Catalog, DatasetCode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // The Occupation profile (person–occupation) stands in for a
    // people–location graph: both are sparse two-mode affiliation networks.
    let catalog = Catalog::scaled(50_000);
    let dataset = catalog
        .generate(DatasetCode::OC, 11)
        .expect("OC profile exists");
    let graph = &dataset.graph;
    println!(
        "People–location graph: {} people, {} locations, {} visits",
        graph.n_upper(),
        graph.n_lower(),
        graph.n_edges()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let pairs = sampling::uniform_pairs(graph, Layer::Upper, 5, &mut rng).expect("sampleable");

    // Compare three local-model estimators across privacy levels: the health
    // authority can trade accuracy against the privacy budget.
    let budgets = [1.0, 2.0, 3.0];
    println!(
        "\n{:<18} {:>8} {:>6} | {:>10} {:>12} {:>12}",
        "pair", "true C2", "eps", "OneR", "MultiR-SS", "MultiR-DS"
    );
    for pair in &pairs {
        let query = Query::new(pair.layer, pair.u, pair.w);
        let truth = query.exact_count(graph).expect("valid query");
        for &eps in &budgets {
            let oner = OneR::default()
                .estimate(graph, &query, eps, &mut rng)
                .expect("OneR runs");
            let ss = MultiRSS::default()
                .estimate(graph, &query, eps, &mut rng)
                .expect("MultiR-SS runs");
            let ds = MultiRDS::default()
                .estimate(graph, &query, eps, &mut rng)
                .expect("MultiR-DS runs");
            println!(
                "(p{:>5}, p{:>5}) {:>8} {:>6.1} | {:>10.2} {:>12.2} {:>12.2}",
                pair.u, pair.w, truth, eps, oner.estimate, ss.estimate, ds.estimate
            );
        }
    }

    println!("\nHigher budgets give sharper estimates; MultiR-DS stays closest to");
    println!("the truth at every privacy level while never exposing a visit list.");
}

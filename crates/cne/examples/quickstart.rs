//! Quickstart: estimate the number of common neighbors of two users in a
//! user–item bipartite graph under edge local differential privacy.
//!
//! Run with `cargo run --example quickstart`.

use bigraph::{BipartiteGraph, Layer};
use cne::{AlgorithmKind, EstimationEngine, Query};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A small user–item graph: 2 users of interest among a catalog of 1000
    // items. User 0 bought items 0..20, user 1 bought items 10..40, so they
    // share exactly 10 items.
    let edges = (0..20u32)
        .map(|v| (0u32, v))
        .chain((10..40u32).map(|v| (1u32, v)));
    let graph = BipartiteGraph::from_edges(2, 1_000, edges).expect("valid edge list");

    let query = Query::new(Layer::Upper, 0, 1);
    let truth = query.exact_count(&graph).expect("valid query");
    let epsilon = 2.0;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    println!("True common neighbor count C2(u, w) = {truth}");
    println!("Privacy budget epsilon = {epsilon}\n");
    println!(
        "{:<16} {:>12} {:>10} {:>8} {:>14}",
        "algorithm", "estimate", "|error|", "rounds", "comm (bytes)"
    );

    // One persistent engine runs every algorithm; repeated queries share its
    // packed-adjacency cache.
    let engine = EstimationEngine::new(&graph);
    let algorithms = [
        AlgorithmKind::Naive,
        AlgorithmKind::OneR,
        AlgorithmKind::MultiRSS,
        AlgorithmKind::MultiRDS,
        AlgorithmKind::CentralDP,
    ];

    for kind in algorithms {
        let report = engine
            .estimate(&query, kind, epsilon, &mut rng)
            .expect("estimation succeeds");
        println!(
            "{:<16} {:>12.2} {:>10.2} {:>8} {:>14}",
            report.algorithm.paper_name(),
            report.estimate,
            (report.estimate - truth as f64).abs(),
            report.rounds,
            report.communication_bytes()
        );
    }

    println!("\nNote: Naive counts on the dense noisy graph and overcounts badly;");
    println!("the multi-round estimators stay close to the true count.");
}

//! Private recommendations over a *live* graph: edges arrive and retire
//! between query rounds, and the engine keeps serving.
//!
//! The loop a real curator runs:
//!
//! 1. producers append edge events to an [`UpdateLog`] while queries run;
//! 2. between rounds the writer drains a bounded batch and calls
//!    [`EstimationEngine::apply_updates`] — the CSR is spliced in place and
//!    only the touched vertices' cached bitmaps are invalidated;
//! 3. readers snapshot [`EstimationEngine::generation`] when they derive a
//!    candidate set and screen through the generation-checked
//!    [`EstimationEngine::estimate_batch_at`], so a candidate list computed
//!    against a superseded graph is rejected instead of silently mixed with
//!    fresh state.
//!
//! The adjacency cache is byte-capped: on graphs too large to cache every
//! dense vertex, the store stays within budget (LRU-evicting cold entries
//! under pressure) while every answer remains byte-identical to an
//! unbounded engine.
//!
//! Run with `cargo run --example streaming_recommendation`.

use bigraph::{GraphDelta, Layer, UpdateLog};
use cne::{CneError, EstimationEngine};
use datasets::{Catalog, DatasetCode};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EPSILON: f64 = 2.0;
const ROUNDS: usize = 4;
const EVENTS_PER_ROUND: usize = 600;

fn main() {
    // A synthetic Movielens-like user–movie graph as the starting state.
    let catalog = Catalog::scaled(50_000);
    let dataset = catalog
        .generate(DatasetCode::ML, 7)
        .expect("ML profile exists");
    let n_upper = dataset.graph.n_upper();
    let n_lower = dataset.graph.n_lower();
    println!(
        "Dataset {}: |U|={}, |L|={}, |E|={}",
        dataset.code,
        n_upper,
        n_lower,
        dataset.graph.n_edges()
    );

    // The engine owns the graph (no copy-on-write when updates land) and
    // caps its adjacency cache at 256 KiB.
    let mut engine = EstimationEngine::from_graph_with_cache_budget(dataset.graph, 256 * 1024);
    engine.warm(Layer::Upper);
    println!(
        "Warm cache: {} bitmaps, {} / {} bytes",
        engine.store().cached_count(Layer::Upper),
        engine.store().bytes_used(),
        engine.store().byte_cap().expect("capped engine")
    );

    let target = (0..n_upper as u32)
        .max_by_key(|&u| engine.graph().degree(Layer::Upper, u))
        .expect("non-empty layer");

    let log = UpdateLog::new();
    let mut traffic = ChaCha8Rng::seed_from_u64(404);
    let mut query_rng = ChaCha8Rng::seed_from_u64(99);

    for round in 0..ROUNDS {
        // --- Queries: derive candidates at the current generation. -------
        let generation = engine.generation();
        let candidates: Vec<u32> = (0..n_upper as u32)
            .filter(|&u| u != target && engine.graph().degree(Layer::Upper, u) > 0)
            .take(8)
            .collect();
        let report = engine
            .estimate_batch_at(
                generation,
                Layer::Upper,
                target,
                &candidates,
                EPSILON,
                &mut query_rng,
            )
            .expect("snapshot is current");
        let top = report.ranked();
        println!(
            "\nRound {round} (generation {generation}, epoch {}): top matches for u{target}",
            engine.graph().epoch()
        );
        for entry in top.iter().take(3) {
            println!(
                "  u{:<6} estimated C2 = {:.2}",
                entry.candidate, entry.estimate
            );
        }

        // --- Ingestion: traffic arrives while the round was served. ------
        for _ in 0..EVENTS_PER_ROUND {
            let upper = traffic.gen_range(0..n_upper as u32);
            let lower = traffic.gen_range(0..n_lower as u32);
            // 3:1 mix of new edges vs retirements, like a growing catalog.
            if traffic.gen_range(0..4) < 3 {
                log.append(GraphDelta::AddEdge { upper, lower });
            } else {
                log.append(GraphDelta::RemoveEdge { upper, lower });
            }
        }

        // --- Apply: drain the log in bounded batches between rounds. -----
        let cached_before = engine.store().cached_count(Layer::Upper);
        let mut touched = 0usize;
        while let Some(batch) = log.drain_batch(256) {
            let applied = engine.apply_updates(&batch).expect("valid stream");
            touched += applied.touched_upper.len();
        }
        println!(
            "  ingested {EVENTS_PER_ROUND} events -> generation {}, {} upper vertices invalidated \
             ({} of {} bitmaps still warm), cache {} / {} bytes",
            engine.generation(),
            touched,
            engine.store().cached_count(Layer::Upper),
            cached_before,
            engine.store().bytes_used(),
            engine.store().byte_cap().expect("capped engine")
        );

        // A reader that kept the old snapshot is told, not misled.
        let stale = engine.estimate_batch_at(
            generation,
            Layer::Upper,
            target,
            &candidates,
            EPSILON,
            &mut query_rng,
        );
        match stale {
            Err(CneError::StaleGeneration { observed, current }) => println!(
                "  stale reader rejected: snapshot {observed} vs current {current} (re-derive and retry)"
            ),
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => println!("  (round produced no effective updates; snapshot still valid)"),
        }
    }

    println!(
        "\nDone: {} events ingested across {ROUNDS} rounds.",
        log.drained()
    );
}

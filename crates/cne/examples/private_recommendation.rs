//! Privacy-preserving "customers also bought" similarity.
//!
//! An e-commerce platform wants to rank candidate users by how similar their
//! purchase history is to a target user — without the server ever seeing raw
//! purchase lists. Jaccard similarity needs the common-neighbor count in the
//! user–item bipartite graph, which is exactly what the MultiR-DS estimator
//! provides under edge LDP.
//!
//! Run with `cargo run --example private_recommendation`.

use bigraph::{stats, Layer};
use cne::{AlgorithmKind, EstimationEngine, Query};
use datasets::{Catalog, DatasetCode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A synthetic Movielens-like user–movie graph from the dataset catalog.
    let catalog = Catalog::scaled(50_000);
    let dataset = catalog
        .generate(DatasetCode::ML, 7)
        .expect("ML profile exists");
    let graph = &dataset.graph;
    let summary = stats::GraphSummary::of(graph);
    println!(
        "Dataset {} ({}): |U|={}, |L|={}, |E|={}",
        dataset.code, dataset.spec.name, summary.n_upper, summary.n_lower, summary.n_edges
    );

    // Pick the highest-degree user as the "target" and a handful of candidates.
    let target = (0..graph.n_upper() as u32)
        .max_by_key(|&u| graph.degree(Layer::Upper, u))
        .expect("non-empty layer");
    let candidates: Vec<u32> = (0..graph.n_upper() as u32)
        .filter(|&u| u != target && graph.degree(Layer::Upper, u) > 0)
        .take(8)
        .collect();

    let epsilon = 2.0;
    // One persistent engine serves every query; repeated calls reuse its
    // packed-adjacency cache.
    let engine = EstimationEngine::new(graph);
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    println!(
        "\nTarget user u{} (degree {}), epsilon = {epsilon}",
        target,
        graph.degree(Layer::Upper, target)
    );
    println!(
        "{:<12} {:>8} {:>14} {:>14} {:>16}",
        "candidate", "degree", "true C2", "estimated C2", "est. Jaccard"
    );

    let mut ranked: Vec<(u32, f64)> = Vec::new();
    for &cand in &candidates {
        let query = Query::new(Layer::Upper, target, cand);
        let truth = query.exact_count(graph).expect("valid query");
        let report = engine
            .estimate(&query, AlgorithmKind::MultiRDS, epsilon, &mut rng)
            .expect("estimation succeeds");
        // Private Jaccard estimate: degrees are released with noise by the
        // MultiR-DS degree round; reuse the reported noisy degrees.
        let du = report.parameters.degree_u.unwrap_or(1.0);
        let dw = report.parameters.degree_w.unwrap_or(1.0);
        let union = (du + dw - report.estimate).max(1.0);
        let jaccard = (report.estimate / union).clamp(0.0, 1.0);
        ranked.push((cand, jaccard));
        println!(
            "u{:<11} {:>8} {:>14} {:>14.2} {:>16.4}",
            cand,
            graph.degree(Layer::Upper, cand),
            truth,
            report.estimate,
            jaccard
        );
    }

    // NaN-safe ranking: a NaN similarity sorts last instead of panicking the
    // sort or surfacing as the top pick.
    ranked.sort_by(|a, b| cne::estimate::nan_last_desc(a.1, b.1));
    println!("\nPrivately ranked recommendations (most similar first):");
    for (rank, (cand, jaccard)) in ranked.iter().enumerate() {
        println!("  {}. u{cand} (estimated Jaccard {jaccard:.4})", rank + 1);
    }
}

//! Reproduces the shape of the paper's Fig. 2: the distribution of estimates
//! produced by Naive, OneR, MultiR-SS and MultiR-DS on an rmwiki-like dataset
//! with ε = 1 for a query pair with highly imbalanced degrees.
//!
//! The output is a text histogram per algorithm; the vertical line of interest
//! is the true count. Run with `cargo run --release --example estimate_distribution`.

use bigraph::Layer;
use cne::{CommonNeighborEstimator, MultiRDS, MultiRSS, Naive, OneR, Query};
use datasets::{Catalog, DatasetCode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let catalog = Catalog::scaled(60_000);
    let dataset = catalog
        .generate(DatasetCode::RM, 1)
        .expect("RM profile exists");
    let graph = &dataset.graph;

    // Pick the most imbalanced pair we can find on the upper layer, mirroring
    // the paper's (556, 2)-degree pair.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let pairs = bigraph::sampling::imbalanced_pairs(graph, Layer::Upper, 20.0, 1, &mut rng)
        .expect("sampleable");
    let pair = pairs
        .first()
        .copied()
        .unwrap_or(bigraph::sampling::QueryPair::new(Layer::Upper, 0, 1));
    let query = Query::new(pair.layer, pair.u, pair.w);
    let truth = query.exact_count(graph).expect("valid query") as f64;
    let (du, dw) = (
        graph.degree(Layer::Upper, pair.u),
        graph.degree(Layer::Upper, pair.w),
    );
    println!(
        "rmwiki-like graph: |U|={}, |L|={}, |E|={}",
        graph.n_upper(),
        graph.n_lower(),
        graph.n_edges()
    );
    println!("query pair degrees: ({du}, {dw}); true C2 = {truth}; epsilon = 1\n");

    let runs = 1_000;
    let epsilon = 1.0;
    let algorithms: Vec<(&str, Box<dyn CommonNeighborEstimator>)> = vec![
        ("Naive", Box::new(Naive)),
        ("OneR", Box::new(OneR::default())),
        ("MultiR-SS", Box::new(MultiRSS::default())),
        ("MultiR-DS", Box::new(MultiRDS::default())),
    ];

    for (name, algo) in &algorithms {
        let estimates: Vec<f64> = (0..runs)
            .map(|_| {
                algo.estimate(graph, &query, epsilon, &mut rng)
                    .expect("estimation succeeds")
                    .estimate
            })
            .collect();
        let mean = estimates.iter().sum::<f64>() / runs as f64;
        let var = estimates
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / runs as f64;
        println!("{name}: mean = {mean:.2}, std = {:.2}", var.sqrt());
        print_histogram(&estimates, truth);
        println!();
    }
}

/// Prints a coarse text histogram of the estimates, marking the bin that
/// contains the true value with `<-- true count`.
fn print_histogram(values: &[f64], truth: f64) {
    let min = values
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .min(truth);
    let max = values
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(truth);
    let bins = 15usize;
    let width = ((max - min) / bins as f64).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let idx = (((v - min) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + i as f64 * width;
        let hi = lo + width;
        let bar = "#".repeat(c * 50 / peak);
        let marker = if truth >= lo && truth < hi {
            "  <-- true count"
        } else {
            ""
        };
        println!("  [{lo:>9.1}, {hi:>9.1}) |{bar}{marker}");
    }
}

//! The central-model baseline `CentralDP`.

use crate::engine::{EngineEstimator, ProtocolEnv, RoundContext};
use crate::error::Result;
use crate::estimate::{AlgorithmKind, ChosenParameters, EstimateReport};
use crate::estimator::CommonNeighborEstimator;
use crate::protocol::Query;
use bigraph::BipartiteGraph;
use ldp::budget::Composition;
use ldp::laplace::LaplaceMechanism;
use ldp::mechanism::Sensitivity;
use serde::{Deserialize, Serialize};

/// The central differential-privacy baseline.
///
/// A trusted curator with access to the whole graph computes the exact count
/// and releases `C2(u, w) + Lap(1/ε)` — the global sensitivity of a common-
/// neighbor count under edge DP is 1 because adding or removing one edge can
/// change the count by at most one. This is not a local-model algorithm; the
/// paper includes it to show the utility gap between the central and local
/// models, and so do we.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CentralDP;

impl EngineEstimator for CentralDP {
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        mut ctx: RoundContext<'_>,
    ) -> Result<EstimateReport> {
        query.validate(env.graph)?;
        let total = ctx.total();

        ctx.charge("central:laplace", total, Composition::Sequential)?;
        let mechanism = LaplaceMechanism::new(total, Sensitivity::one());
        let exact = query.exact_count(env.graph)? as f64;
        let estimate = mechanism.perturb(exact, ctx.rng());
        ctx.record_scalar_upload(1, "central-release");

        let epsilon = ctx.epsilon();
        let (budget, transcript) = ctx.finish();
        Ok(EstimateReport {
            algorithm: self.kind(),
            estimate,
            epsilon,
            budget,
            transcript,
            rounds: 1,
            parameters: ChosenParameters::default(),
        })
    }
}

impl CommonNeighborEstimator for CentralDP {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::CentralDP
    }

    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport> {
        crate::engine::run_uncached(self, g, query, epsilon, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (BipartiteGraph, Query) {
        let edges = (0..10u32)
            .map(|v| (0u32, v))
            .chain((5..15u32).map(|v| (1u32, v)));
        let g = BipartiteGraph::from_edges(2, 100, edges).unwrap();
        (g, Query::new(Layer::Upper, 0, 1))
    }

    #[test]
    fn unbiased_with_laplace_variance() {
        let (g, q) = toy();
        let truth = q.exact_count(&g).unwrap() as f64; // 5
        let mut rng = StdRng::seed_from_u64(8);
        let runs = 20_000;
        let vals: Vec<f64> = (0..runs)
            .map(|_| CentralDP.estimate(&g, &q, 2.0, &mut rng).unwrap().estimate)
            .collect();
        let mean = vals.iter().sum::<f64>() / runs as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / runs as f64;
        assert!((mean - truth).abs() < 0.05, "mean {mean}");
        let expected_var = crate::loss::central_dp_l2(2.0); // 0.5
        assert!(
            (var - expected_var).abs() < 0.1 * expected_var,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn central_beats_local_algorithms() {
        let (g, q) = toy();
        let truth = q.exact_count(&g).unwrap() as f64;
        let mut rng = StdRng::seed_from_u64(77);
        let runs = 200;
        let mut central_err = 0.0;
        let mut ss_err = 0.0;
        for _ in 0..runs {
            central_err +=
                (CentralDP.estimate(&g, &q, 2.0, &mut rng).unwrap().estimate - truth).abs();
            ss_err += (crate::MultiRSS::default()
                .estimate(&g, &q, 2.0, &mut rng)
                .unwrap()
                .estimate
                - truth)
                .abs();
        }
        assert!(central_err < ss_err);
    }

    #[test]
    fn report_metadata() {
        let (g, q) = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let report = CentralDP.estimate(&g, &q, 1.0, &mut rng).unwrap();
        assert_eq!(report.algorithm, AlgorithmKind::CentralDP);
        assert!(!report.algorithm.is_local());
        assert_eq!(report.rounds, 1);
        assert_eq!(report.communication_bytes(), 8);
        assert!((report.budget.consumed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (g, _) = toy();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(CentralDP
            .estimate(&g, &Query::new(Layer::Upper, 0, 0), 1.0, &mut rng)
            .is_err());
        assert!(CentralDP
            .estimate(&g, &Query::new(Layer::Upper, 0, 1), 0.0, &mut rng)
            .is_err());
    }
}

//! The `OneR` algorithm (Algorithm 2): a one-round unbiased estimator.

use crate::engine::{EngineEstimator, ProtocolEnv, RoundContext};
use crate::error::Result;
use crate::estimate::{AlgorithmKind, ChosenParameters, EstimateReport};
use crate::estimator::CommonNeighborEstimator;
use crate::protocol::{randomized_response_round_packed, Query};
use bigraph::BipartiteGraph;
use ldp::noisy_graph::NoisyGraphViewPacked;
use serde::{Deserialize, Serialize};

/// The one-round unbiased estimator.
///
/// Both query vertices perturb their neighbor lists with the full budget; the
/// curator then computes
///
/// ```text
/// f̃₂(u, w) = Σ_v (A'[u,v] − p)(A'[v,w] − p) / (1 − 2p)²
/// ```
///
/// over every vertex `v` of the opposite layer. Using
/// `E[A'[i,j]] = A[i,j] + p(1 − 2A[i,j])` this is an unbiased estimate of
/// `C2(u, w)`, but its variance carries a factor of the opposite-layer size
/// `n₁` because every candidate vertex contributes noise.
///
/// The sum is evaluated with the expanded closed form of the paper
/// (Section 3.2), which only needs the noisy intersection size `N₁`, the
/// noisy union size `N₂`, and `n₁` — `O(deg)` curator work instead of `O(n₁)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneR {
    /// If `true`, evaluate the estimator by the naive `O(n₁)` summation over
    /// all candidates instead of the closed form. The two are algebraically
    /// identical; the flag exists for the ablation benchmark that measures
    /// the cost of the unexpanded form.
    pub use_dense_sum: bool,
}

impl OneR {
    /// The closed-form evaluation given the noisy view (Section 3.2):
    /// `N₁ (1−p)²/(1−2p)² − (N₂−N₁)(1−p)p/(1−2p)² + (n₁−N₂) p²/(1−2p)²`.
    #[must_use]
    pub fn closed_form(n1: u64, n2: u64, opposite_size: usize, p: f64) -> f64 {
        let q = (1.0 - 2.0 * p) * (1.0 - 2.0 * p);
        let n1 = n1 as f64;
        let n2 = n2 as f64;
        let n = opposite_size as f64;
        n1 * (1.0 - p) * (1.0 - p) / q - (n2 - n1) * (1.0 - p) * p / q + (n - n2) * p * p / q
    }

    fn dense_sum(view: &NoisyGraphViewPacked, p: f64) -> f64 {
        let q = (1.0 - 2.0 * p) * (1.0 - 2.0 * p);
        let mut total = 0.0;
        for v in 0..view.opposite_size() as u32 {
            let au = if view.u.contains(v) { 1.0 } else { 0.0 };
            let aw = if view.w.contains(v) { 1.0 } else { 0.0 };
            total += (au - p) * (aw - p) / q;
        }
        total
    }
}

impl EngineEstimator for OneR {
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        mut ctx: RoundContext<'_>,
    ) -> Result<EstimateReport> {
        query.validate(env.graph)?;

        // Vertex side: u and w perturb their neighbor lists with the full ε
        // — the noisy rows land directly in packed form, so the curator's
        // intersection below is one AND+popcount pass.
        let round = randomized_response_round_packed(
            env,
            query.layer,
            &[query.u, query.w],
            ctx.total(),
            1,
            &mut ctx,
        )?;
        let p = round.flip_probability;
        let mut noisy = round.noisy.into_iter();
        let view = NoisyGraphViewPacked::new(
            noisy.next().expect("two lists requested"),
            noisy.next().expect("two lists requested"),
        );

        // Curator side: unbiased correction.
        let estimate = if self.use_dense_sum {
            Self::dense_sum(&view, p)
        } else {
            let (n1, n2) = view.noisy_counts();
            Self::closed_form(n1, n2, view.opposite_size(), p)
        };

        let epsilon = ctx.epsilon();
        let (budget, transcript) = ctx.finish();
        Ok(EstimateReport {
            algorithm: self.kind(),
            estimate,
            epsilon,
            budget,
            transcript,
            rounds: 1,
            parameters: ChosenParameters::default(),
        })
    }
}

impl CommonNeighborEstimator for OneR {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::OneR
    }

    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport> {
        crate::engine::run_uncached(self, g, query, epsilon, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse_graph() -> (BipartiteGraph, Query) {
        let edges = (0..8u32)
            .map(|v| (0u32, v))
            .chain((4..12u32).map(|v| (1u32, v)));
        let g = BipartiteGraph::from_edges(2, 500, edges).unwrap();
        (g, Query::new(Layer::Upper, 0, 1))
    }

    #[test]
    fn closed_form_equals_dense_sum() {
        let (g, q) = sparse_graph();
        for seed in 0..10 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let fast = OneR::default().estimate(&g, &q, 1.5, &mut rng_a).unwrap();
            let dense = OneR {
                use_dense_sum: true,
            }
            .estimate(&g, &q, 1.5, &mut rng_b)
            .unwrap();
            assert!(
                (fast.estimate - dense.estimate).abs() < 1e-9,
                "closed form {} vs dense {}",
                fast.estimate,
                dense.estimate
            );
        }
    }

    #[test]
    fn estimates_are_unbiased() {
        let (g, q) = sparse_graph();
        let truth = q.exact_count(&g).unwrap() as f64; // = 4
        let mut rng = StdRng::seed_from_u64(42);
        let runs = 600;
        let mean: f64 = (0..runs)
            .map(|_| {
                OneR::default()
                    .estimate(&g, &q, 2.0, &mut rng)
                    .unwrap()
                    .estimate
            })
            .sum::<f64>()
            / runs as f64;
        // Standard error of the mean is sqrt(Var/runs); Var here is roughly
        // n1·p²(1-p)²/(1-2p)^4 + ... ≈ 7, so SE ≈ 0.1. Allow 5 SEs.
        let var = crate::loss::one_round_l2(500, 8.0, 8.0, 2.0);
        let se = (var / runs as f64).sqrt();
        assert!(
            (mean - truth).abs() < 5.0 * se + 0.05,
            "mean {mean} truth {truth} se {se}"
        );
    }

    #[test]
    fn empirical_variance_matches_theorem_4() {
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(9);
        let runs = 800;
        let vals: Vec<f64> = (0..runs)
            .map(|_| {
                OneR::default()
                    .estimate(&g, &q, 2.0, &mut rng)
                    .unwrap()
                    .estimate
            })
            .collect();
        let mean = vals.iter().sum::<f64>() / runs as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / runs as f64;
        let expected = crate::loss::one_round_l2(500, 8.0, 8.0, 2.0);
        assert!(
            (var - expected).abs() < expected * 0.25,
            "empirical var {var} vs theoretical {expected}"
        );
    }

    #[test]
    fn beats_naive_on_sparse_graphs() {
        let (g, q) = sparse_graph();
        let truth = q.exact_count(&g).unwrap() as f64;
        let mut rng = StdRng::seed_from_u64(5);
        let runs = 100;
        let mut naive_err = 0.0;
        let mut oner_err = 0.0;
        for _ in 0..runs {
            naive_err += (crate::Naive
                .estimate(&g, &q, 1.0, &mut rng)
                .unwrap()
                .estimate
                - truth)
                .abs();
            oner_err += (OneR::default()
                .estimate(&g, &q, 1.0, &mut rng)
                .unwrap()
                .estimate
                - truth)
                .abs();
        }
        assert!(
            oner_err < naive_err,
            "OneR mean abs error {} should beat Naive {}",
            oner_err / runs as f64,
            naive_err / runs as f64
        );
    }

    #[test]
    fn report_metadata() {
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let report = OneR::default().estimate(&g, &q, 2.0, &mut rng).unwrap();
        assert_eq!(report.algorithm, AlgorithmKind::OneR);
        assert_eq!(report.rounds, 1);
        assert!((report.budget.consumed() - 2.0).abs() < 1e-9);
        assert_eq!(report.transcript.message_count(), 2);
    }

    #[test]
    fn closed_form_extreme_inputs() {
        // All candidates are common noisy neighbors.
        let p = 0.2;
        let all_common = OneR::closed_form(10, 10, 10, p);
        assert!(all_common > 0.0);
        // No noisy edges at all: estimate is n·p²/(1-2p)², small but positive.
        let none = OneR::closed_form(0, 0, 10, p);
        assert!(none > 0.0 && none < all_common);
    }

    #[test]
    fn invalid_budget_rejected() {
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(OneR::default()
            .estimate(&g, &q, f64::NAN, &mut rng)
            .is_err());
    }
}

//! Estimate reports: what an estimation protocol returns.

use ldp::budget::BudgetAccountant;
use ldp::transcript::Transcript;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which algorithm produced an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Common-neighbor count on the noisy graph (biased baseline).
    Naive,
    /// One-round unbiased estimator.
    OneR,
    /// Multiple-round single-source estimator.
    MultiRSS,
    /// Multiple-round double-source estimator with a fixed even split.
    MultiRDSBasic,
    /// Multiple-round double-source estimator with optimised `(ε₁, α)`.
    MultiRDS,
    /// MultiR-DS assuming public degrees (no degree-estimation round).
    MultiRDSStar,
    /// Central-model Laplace baseline.
    CentralDP,
}

impl AlgorithmKind {
    /// The name used in the paper's figures.
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            AlgorithmKind::Naive => "Naive",
            AlgorithmKind::OneR => "OneR",
            AlgorithmKind::MultiRSS => "MultiR-SS",
            AlgorithmKind::MultiRDSBasic => "MultiR-DS-Basic",
            AlgorithmKind::MultiRDS => "MultiR-DS",
            AlgorithmKind::MultiRDSStar => "MultiR-DS*",
            AlgorithmKind::CentralDP => "CentralDP",
        }
    }

    /// Whether the estimator is unbiased (expectation equals the true count).
    #[must_use]
    pub fn is_unbiased(self) -> bool {
        !matches!(self, AlgorithmKind::Naive)
    }

    /// Whether the algorithm runs under the local model (as opposed to the
    /// central model, which trusts the curator with the raw graph).
    #[must_use]
    pub fn is_local(self) -> bool {
        !matches!(self, AlgorithmKind::CentralDP)
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Descending comparator for ranking estimates, with NaN ordered *after*
/// every real value.
///
/// A plain descending [`f64::total_cmp`] would rank a (positive) NaN first —
/// IEEE total order places it above `+∞` — silently surfacing a pathological
/// estimate as the winner; `partial_cmp().unwrap()` would panic instead.
/// Use this anywhere estimates or similarities are ranked best-first.
#[must_use]
pub fn nan_last_desc(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => b.total_cmp(&a),
        (a_nan, b_nan) => a_nan.cmp(&b_nan),
    }
}

/// Parameters an adaptive algorithm chose at run time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChosenParameters {
    /// Budget spent on degree estimation (`ε₀`), if any.
    pub epsilon0: Option<f64>,
    /// Budget spent on randomized response (`ε₁`), if any.
    pub epsilon1: Option<f64>,
    /// Budget spent on the Laplace mechanism (`ε₂`), if any.
    pub epsilon2: Option<f64>,
    /// Weight of the `u`-side single-source estimator (`α`), if applicable.
    pub alpha: Option<f64>,
    /// Noisy (or public) degree of `u` used for optimisation, if any.
    pub degree_u: Option<f64>,
    /// Noisy (or public) degree of `w` used for optimisation, if any.
    pub degree_w: Option<f64>,
}

/// Everything an estimation run reports back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimateReport {
    /// The algorithm that ran.
    pub algorithm: AlgorithmKind,
    /// The estimate of `C2(u, w)` (may be negative or fractional — the
    /// estimators are unbiased, not truncated).
    pub estimate: f64,
    /// The total privacy budget the caller requested.
    pub epsilon: f64,
    /// Per-round privacy accounting; `budget.consumed() ≤ epsilon` always.
    pub budget: BudgetAccountant,
    /// Byte-accurate record of every message exchanged.
    pub transcript: Transcript,
    /// Number of client–curator interaction rounds.
    pub rounds: u32,
    /// Adaptive parameters the algorithm chose, if any.
    pub parameters: ChosenParameters,
}

impl EstimateReport {
    /// The estimate clamped to the feasible range `[0, ∞)` and rounded — a
    /// convenience for consumers that need an integral count. The raw
    /// unbiased value remains in [`EstimateReport::estimate`].
    #[must_use]
    pub fn rounded_estimate(&self) -> u64 {
        if self.estimate.is_nan() {
            0
        } else {
            self.estimate.max(0.0).round() as u64
        }
    }

    /// Total communication cost in bytes.
    #[must_use]
    pub fn communication_bytes(&self) -> usize {
        self.transcript.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp::budget::PrivacyBudget;

    #[test]
    fn paper_names_are_unique() {
        let kinds = [
            AlgorithmKind::Naive,
            AlgorithmKind::OneR,
            AlgorithmKind::MultiRSS,
            AlgorithmKind::MultiRDSBasic,
            AlgorithmKind::MultiRDS,
            AlgorithmKind::MultiRDSStar,
            AlgorithmKind::CentralDP,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.paper_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn unbiasedness_and_locality_flags() {
        assert!(!AlgorithmKind::Naive.is_unbiased());
        assert!(AlgorithmKind::OneR.is_unbiased());
        assert!(AlgorithmKind::MultiRDS.is_unbiased());
        assert!(AlgorithmKind::CentralDP.is_unbiased());
        assert!(AlgorithmKind::Naive.is_local());
        assert!(!AlgorithmKind::CentralDP.is_local());
    }

    #[test]
    fn rounded_estimate_clamps() {
        let report = EstimateReport {
            algorithm: AlgorithmKind::OneR,
            estimate: -3.7,
            epsilon: 1.0,
            budget: BudgetAccountant::new(PrivacyBudget::new(1.0).unwrap()),
            transcript: Transcript::new(),
            rounds: 1,
            parameters: ChosenParameters::default(),
        };
        assert_eq!(report.rounded_estimate(), 0);
        let report = EstimateReport {
            estimate: 4.4,
            ..report
        };
        assert_eq!(report.rounded_estimate(), 4);
        let report = EstimateReport {
            estimate: f64::NAN,
            ..report
        };
        assert_eq!(report.rounded_estimate(), 0);
    }

    #[test]
    fn nan_last_desc_orders_best_first_and_nan_last() {
        let mut vals = [f64::NAN, 1.0, f64::INFINITY, -2.0, 0.0];
        vals.sort_by(|a, b| nan_last_desc(*a, *b));
        assert_eq!(vals[0], f64::INFINITY);
        assert_eq!(vals[1], 1.0);
        assert_eq!(vals[2], 0.0);
        assert_eq!(vals[3], -2.0);
        assert!(vals[4].is_nan());
    }

    #[test]
    fn display_matches_paper_name() {
        assert_eq!(AlgorithmKind::MultiRSS.to_string(), "MultiR-SS");
    }

    #[test]
    fn serde_round_trip() {
        let report = EstimateReport {
            algorithm: AlgorithmKind::MultiRDS,
            estimate: 2.5,
            epsilon: 2.0,
            budget: BudgetAccountant::new(PrivacyBudget::new(2.0).unwrap()),
            transcript: Transcript::new(),
            rounds: 3,
            parameters: ChosenParameters {
                epsilon1: Some(0.9),
                alpha: Some(0.7),
                ..Default::default()
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: EstimateReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, AlgorithmKind::MultiRDS);
        assert_eq!(back.parameters.alpha, Some(0.7));
    }
}

//! # cne — common neighborhood estimation under edge local differential privacy
//!
//! This crate implements the algorithms of *"Common Neighborhood Estimation
//! over Bipartite Graphs under Local Differential Privacy"* (SIGMOD 2025):
//! given a bipartite graph `G`, a privacy budget `ε`, and two query vertices
//! `u`, `w` on the same layer, estimate the number of their common neighbors
//! `C2(u, w) = |N(u) ∩ N(w)|` while every byte that leaves a vertex satisfies
//! ε-edge local differential privacy.
//!
//! ## Algorithms
//!
//! | Type | Paper name | Rounds | Idea |
//! |---|---|---|---|
//! | [`Naive`] | Naive | 1 | count common neighbors on the randomized-response noisy graph (biased) |
//! | [`OneR`] | OneR | 1 | unbiased correction of the noisy-graph count |
//! | [`MultiRSS`] | MultiR-SS | 2 | `u` combines its true neighborhood with `w`'s noisy edges, then adds Laplace noise |
//! | [`MultiRDSBasic`] | MultiR-DS-Basic | 2 | plain average of the two single-source estimators |
//! | [`MultiRDS`] | MultiR-DS | 3 | weighted average with optimised budget split `(ε₁, α)` |
//! | [`MultiRDSStar`] | MultiR-DS* | 2 | MultiR-DS with public degrees (no ε₀ round) |
//! | [`CentralDP`] | CentralDP | — | central-model Laplace baseline |
//!
//! All algorithms implement [`CommonNeighborEstimator`] and return an
//! [`EstimateReport`] containing the estimate, the exact privacy-budget
//! accounting, and a byte-accurate communication transcript.
//!
//! ## Serving repeated queries
//!
//! For one-off estimates call [`CommonNeighborEstimator::estimate`] directly.
//! For anything that issues more than a handful of queries against the same
//! graph — batch screening, experiment sweeps, a long-lived service — build
//! an [`EstimationEngine`] once and route queries through it: every run then
//! shares a lazily warmed cache of bit-packed adjacencies
//! ([`AdjacencyStore`]), and sharded fan-outs
//! ([`EstimationEngine::estimate_many_targets`]) keep the deterministic
//! per-user RNG-stream contract at any thread count. Engine results are
//! byte-identical to the one-shot path for the same seed.
//!
//! The graph need not be static: [`EstimationEngine::apply_updates`]
//! ingests epoch-counted [`bigraph::UpdateBatch`]es of streaming edge
//! updates, precisely invalidating only the touched vertices' cached
//! bitmaps, and generation-checked readers
//! ([`EstimationEngine::estimate_batch_at`]) detect snapshots superseded by
//! updates instead of silently serving them. Caches can be byte-capped with
//! LRU eviction ([`EstimationEngine::with_cache_budget`]) for graphs too
//! large to cache in full. See the [`engine`] module docs for the cache,
//! mutation & invalidation lifecycles and the determinism contract.
//!
//! When queries must *never* wait on a splice — a live recommendation
//! tier with a continuous write stream — wrap the graph in a
//! [`ServingEngine`] instead of owning an engine directly: readers pin
//! epoch-stamped snapshots (lock-free, allocation-free) while a dedicated
//! writer thread drains the producer-sharded [`bigraph::UpdateLog`] and
//! splices an offline buffer, publishing by epoch swap. Served estimates
//! stay byte-identical to a cold engine at the pinned epoch; see the
//! [`serving`] module docs for the lifecycle and the [`engine`] docs'
//! *Serving lifecycle* section for how the two models relate.
//!
//! ## Quick start
//!
//! ```
//! use bigraph::{BipartiteGraph, Layer};
//! use cne::{CommonNeighborEstimator, MultiRDS, Query};
//! use rand::SeedableRng;
//!
//! // Two users sharing three items.
//! let g = BipartiteGraph::from_edges(
//!     2,
//!     100,
//!     [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (1, 3)],
//! )
//! .unwrap();
//!
//! let query = Query::new(Layer::Upper, 0, 1);
//! let algo = MultiRDS::default();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let report = algo.estimate(&g, &query, 2.0, &mut rng).unwrap();
//!
//! // The estimate is unbiased; a single draw lands near the true count 3.
//! assert!(report.estimate.is_finite());
//! assert!(report.budget.consumed() <= 2.0 + 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod central;
pub mod double_source;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod estimator;
pub mod loss;
pub mod naive;
pub mod one_round;
pub mod optimizer;
pub mod protocol;
pub mod serving;
pub mod similarity;
pub mod single_source;

pub use batch::{
    batch_round2, validate_batch_query, BatchEstimate, BatchReport, BatchRound1, BatchSingleSource,
};
pub use central::CentralDP;
pub use double_source::{MultiRDS, MultiRDSBasic, MultiRDSStar};
pub use engine::{
    run_detailed, AdjacencyStore, EngineEstimator, EstimationEngine, ProtocolEnv, RoundContext,
    ScratchArena,
};
pub use error::{CneError, Result};
pub use estimate::{AlgorithmKind, EstimateReport};
pub use estimator::CommonNeighborEstimator;
pub use naive::Naive;
pub use one_round::OneR;
pub use protocol::Query;
pub use serving::{EngineSnapshot, ServingConfig, ServingEngine, ServingStats};
pub use similarity::{SimilarityEstimator, SimilarityReport};
pub use single_source::MultiRSS;

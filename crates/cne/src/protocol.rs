//! Shared protocol building blocks: queries and round helpers.
//!
//! Every estimation algorithm is phrased as a sequence of *vertex-side* and
//! *curator-side* steps. The helpers here implement the steps that several
//! algorithms share — validating the query and running a randomized-response
//! round for one or both query vertices — so the per-algorithm modules only
//! contain the logic that distinguishes them. All run state (budget,
//! transcript, RNG) flows through one [`RoundContext`].

use crate::engine::RoundContext;
use crate::error::Result;
use bigraph::{common_neighbors, BipartiteGraph, Layer, VertexId};
use ldp::budget::{Composition, PrivacyBudget};
use ldp::noisy_graph::NoisyNeighbors;
use ldp::transcript::{Direction, Label};
use serde::{Deserialize, Serialize};

/// Size in bytes of one reported edge endpoint in a noisy-edge upload.
pub const EDGE_BYTES: usize = std::mem::size_of::<VertexId>();
/// Size in bytes of one scalar (estimator value or noisy degree) message.
pub const SCALAR_BYTES: usize = std::mem::size_of::<f64>();

/// A same-layer query pair `(u, w)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// The layer both query vertices live on.
    pub layer: Layer,
    /// The first query vertex.
    pub u: VertexId,
    /// The second query vertex.
    pub w: VertexId,
}

impl Query {
    /// Creates a query for two vertices on `layer`.
    #[must_use]
    pub fn new(layer: Layer, u: VertexId, w: VertexId) -> Self {
        Self { layer, u, w }
    }

    /// Validates the query against a graph: both vertices exist, are distinct,
    /// and live on the stated layer.
    ///
    /// # Errors
    ///
    /// Propagates [`bigraph::GraphError`] wrapped in [`crate::CneError::Graph`].
    pub fn validate(&self, g: &BipartiteGraph) -> Result<()> {
        common_neighbors::check_query_pair(g, self.layer, self.u, self.w)?;
        Ok(())
    }

    /// The exact (non-private) common-neighbor count — the ground truth the
    /// experiment harness compares estimates against.
    ///
    /// # Errors
    ///
    /// Propagates graph errors for invalid queries.
    pub fn exact_count(&self, g: &BipartiteGraph) -> Result<u64> {
        Ok(common_neighbors::count(g, self.layer, self.u, self.w)?)
    }

    /// The query with `u` and `w` swapped.
    #[must_use]
    pub fn swapped(&self) -> Query {
        Query::new(self.layer, self.w, self.u)
    }

    /// Number of vertices on the opposite layer (the candidate pool size the
    /// one-round algorithms work with; `n₁` in the paper when `u, w ∈ L(G)`).
    #[must_use]
    pub fn opposite_size(&self, g: &BipartiteGraph) -> usize {
        g.layer_size(self.layer.opposite())
    }
}

/// Outcome of a randomized-response round for a set of query vertices.
#[derive(Debug, Clone)]
pub struct RrRound {
    /// The noisy neighbor lists, in the same order as the vertices passed in.
    pub noisy: Vec<NoisyNeighbors>,
    /// The flip probability used.
    pub flip_probability: f64,
}

/// Runs one randomized-response round: each vertex in `vertices` perturbs its
/// neighbor list with budget `epsilon1` and uploads the noisy edges to the
/// curator. The round is recorded in the context's transcript and charged to
/// its budget (one sequential charge — the perturbed lists of different
/// vertices cover disjoint edge sets *of those vertices' own lists*, but the
/// paper accounts the RR round once at `ε₁`, which parallel composition over
/// the reporting vertices justifies; we charge it sequentially against the
/// total, matching Theorem 7 / Theorem 10).
///
/// # Errors
///
/// Fails if the charge would exceed the run's total budget.
pub fn randomized_response_round(
    g: &BipartiteGraph,
    layer: Layer,
    vertices: &[VertexId],
    epsilon1: PrivacyBudget,
    round: u32,
    ctx: &mut RoundContext<'_>,
) -> Result<RrRound> {
    ctx.charge(
        Label::Indexed("round", round, ":rr"),
        epsilon1,
        Composition::Sequential,
    )?;
    let mut noisy = Vec::with_capacity(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        let list = {
            let (rng, scratch) = ctx.rng_and_scratch();
            let (kept, flipped) = scratch.rr_buffers();
            NoisyNeighbors::generate_with(g, layer, v, epsilon1, rng, kept, flipped)
        };
        ctx.record(
            round,
            Direction::Upload,
            Label::Indexed("noisy-edges(v", i as u32, ")"),
            list.message_bytes(),
        );
        if i > 0 {
            // Reporting vertices after the first compose in parallel (their
            // neighbor lists are disjoint datasets), so they do not consume
            // additional budget beyond ε₁; record a zero-cost marker charge is
            // unnecessary — the single sequential charge above covers the round.
        }
        noisy.push(list);
    }
    let flip_probability = 1.0 / (1.0 + epsilon1.value().exp());
    Ok(RrRound {
        noisy,
        flip_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoundContext;
    use ldp::transcript::Direction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(3, 10, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 9)]).unwrap()
    }

    #[test]
    fn query_validation() {
        let g = toy();
        assert!(Query::new(Layer::Upper, 0, 1).validate(&g).is_ok());
        assert!(Query::new(Layer::Upper, 0, 0).validate(&g).is_err());
        assert!(Query::new(Layer::Upper, 0, 9).validate(&g).is_err());
        assert!(Query::new(Layer::Lower, 0, 9).validate(&g).is_ok());
    }

    #[test]
    fn query_exact_count_and_swap() {
        let g = toy();
        let q = Query::new(Layer::Upper, 0, 1);
        assert_eq!(q.exact_count(&g).unwrap(), 1);
        assert_eq!(q.swapped().exact_count(&g).unwrap(), 1);
        assert_eq!(q.swapped().u, 1);
        assert_eq!(q.opposite_size(&g), 10);
        assert_eq!(Query::new(Layer::Lower, 0, 1).opposite_size(&g), 3);
    }

    #[test]
    fn rr_round_charges_budget_once_and_records_uploads() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = RoundContext::begin_detailed(2.0, &mut rng).unwrap();
        let eps1 = PrivacyBudget::new(1.0).unwrap();
        let round =
            randomized_response_round(&g, Layer::Upper, &[0, 1], eps1, 1, &mut ctx).unwrap();
        assert_eq!(round.noisy.len(), 2);
        assert!((round.flip_probability - 1.0 / (1.0 + 1.0f64.exp())).abs() < 1e-12);
        let (budget, transcript) = ctx.finish();
        assert!((budget.consumed() - 1.0).abs() < 1e-12);
        assert_eq!(transcript.messages().len(), 2);
        assert_eq!(transcript.messages()[0].label, "noisy-edges(v0)");
        assert_eq!(transcript.messages()[1].label, "noisy-edges(v1)");
        assert_eq!(budget.charges()[0].label, "round1:rr");
        assert_eq!(transcript.rounds(), 1);
    }

    #[test]
    fn rr_round_rejects_overcharge() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = RoundContext::begin(0.5, &mut rng).unwrap();
        let eps1 = PrivacyBudget::new(1.0).unwrap();
        let err = randomized_response_round(&g, Layer::Upper, &[0], eps1, 1, &mut ctx);
        assert!(err.is_err());
    }

    #[test]
    fn download_and_scalar_records() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = RoundContext::begin(1.0, &mut rng).unwrap();
        let list = NoisyNeighbors::from_parts(0, Layer::Upper, 10, 1.0, vec![1, 2, 3]);
        ctx.record_download(2, "noisy-edges(w) -> u", &list);
        ctx.record_scalar_upload(2, "estimator(f_u)");
        let (_, t) = ctx.finish();
        assert_eq!(t.total_bytes(), 3 * EDGE_BYTES + SCALAR_BYTES);
        assert_eq!(t.bytes_in_direction(Direction::Download), 3 * EDGE_BYTES);
    }
}

//! Shared protocol building blocks: queries and round helpers.
//!
//! Every estimation algorithm is phrased as a sequence of *vertex-side* and
//! *curator-side* steps. The helpers here implement the steps that several
//! algorithms share — validating the query and running a randomized-response
//! round for one or both query vertices — so the per-algorithm modules only
//! contain the logic that distinguishes them. All run state (budget,
//! transcript, RNG) flows through one [`RoundContext`].

use crate::engine::{ProtocolEnv, RoundContext};
use crate::error::Result;
use bigraph::{common_neighbors, BipartiteGraph, Layer, VertexId};
use ldp::budget::{Composition, PrivacyBudget};
use ldp::noisy_graph::{NoisyNeighbors, NoisyNeighborsPacked};
use ldp::transcript::{Direction, Label};
use serde::{Deserialize, Serialize};

/// Size in bytes of one reported edge endpoint in a noisy-edge upload.
pub const EDGE_BYTES: usize = std::mem::size_of::<VertexId>();
/// Size in bytes of one scalar (estimator value or noisy degree) message.
pub const SCALAR_BYTES: usize = std::mem::size_of::<f64>();

/// A same-layer query pair `(u, w)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// The layer both query vertices live on.
    pub layer: Layer,
    /// The first query vertex.
    pub u: VertexId,
    /// The second query vertex.
    pub w: VertexId,
}

impl Query {
    /// Creates a query for two vertices on `layer`.
    #[must_use]
    pub fn new(layer: Layer, u: VertexId, w: VertexId) -> Self {
        Self { layer, u, w }
    }

    /// Validates the query against a graph: both vertices exist, are distinct,
    /// and live on the stated layer.
    ///
    /// # Errors
    ///
    /// Propagates [`bigraph::GraphError`] wrapped in [`crate::CneError::Graph`].
    pub fn validate(&self, g: &BipartiteGraph) -> Result<()> {
        common_neighbors::check_query_pair(g, self.layer, self.u, self.w)?;
        Ok(())
    }

    /// The exact (non-private) common-neighbor count — the ground truth the
    /// experiment harness compares estimates against.
    ///
    /// # Errors
    ///
    /// Propagates graph errors for invalid queries.
    pub fn exact_count(&self, g: &BipartiteGraph) -> Result<u64> {
        Ok(common_neighbors::count(g, self.layer, self.u, self.w)?)
    }

    /// The query with `u` and `w` swapped.
    #[must_use]
    pub fn swapped(&self) -> Query {
        Query::new(self.layer, self.w, self.u)
    }

    /// Number of vertices on the opposite layer (the candidate pool size the
    /// one-round algorithms work with; `n₁` in the paper when `u, w ∈ L(G)`).
    #[must_use]
    pub fn opposite_size(&self, g: &BipartiteGraph) -> usize {
        g.layer_size(self.layer.opposite())
    }
}

/// Outcome of a randomized-response round for a set of query vertices.
#[derive(Debug, Clone)]
pub struct RrRound {
    /// The noisy neighbor lists, in the same order as the vertices passed in.
    pub noisy: Vec<NoisyNeighbors>,
    /// The flip probability used.
    pub flip_probability: f64,
}

/// Outcome of a **packed-native** randomized-response round: the noisy
/// rows live directly in bit-packed form (see
/// [`ldp::noisy_graph::NoisyNeighborsPacked`]), ready for word-parallel
/// intersection — no id list is ever materialized.
#[derive(Debug, Clone)]
pub struct RrRoundPacked {
    /// The packed noisy rows, in the same order as the vertices passed in.
    pub noisy: Vec<NoisyNeighborsPacked>,
    /// The flip probability used.
    pub flip_probability: f64,
}

/// The shared scaffolding of both randomized-response rounds: one
/// sequential `ε₁` charge, one noisy row per vertex produced by `generate`,
/// one upload record per row. Keeping the charge, the labels, and the byte
/// accounting in a single body is what makes the list and packed rounds
/// *structurally* transcript-identical rather than identical-by-discipline.
fn rr_round_scaffold<T>(
    vertices: &[VertexId],
    epsilon1: PrivacyBudget,
    round: u32,
    ctx: &mut RoundContext<'_>,
    mut generate: impl FnMut(&mut RoundContext<'_>, VertexId) -> T,
    message_bytes: impl Fn(&T) -> usize,
) -> Result<(Vec<T>, f64)> {
    // One sequential charge covers every reporting vertex: their neighbor
    // lists are disjoint datasets, so the paper accounts the RR round once
    // at ε₁ (parallel composition over the reporters — Theorem 7 / 10).
    ctx.charge(
        Label::Indexed("round", round, ":rr"),
        epsilon1,
        Composition::Sequential,
    )?;
    let mut noisy = Vec::with_capacity(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        let row = generate(ctx, v);
        ctx.record(
            round,
            Direction::Upload,
            Label::Indexed("noisy-edges(v", i as u32, ")"),
            message_bytes(&row),
        );
        noisy.push(row);
    }
    Ok((noisy, 1.0 / (1.0 + epsilon1.value().exp())))
}

/// Runs one randomized-response round: each vertex in `vertices` perturbs its
/// neighbor list with budget `epsilon1` and uploads the noisy edges to the
/// curator. The round is recorded in the context's transcript and charged to
/// its budget once, sequentially (see `rr_round_scaffold` for the
/// composition argument).
///
/// # Errors
///
/// Fails if the charge would exceed the run's total budget.
pub fn randomized_response_round(
    g: &BipartiteGraph,
    layer: Layer,
    vertices: &[VertexId],
    epsilon1: PrivacyBudget,
    round: u32,
    ctx: &mut RoundContext<'_>,
) -> Result<RrRound> {
    let (noisy, flip_probability) = rr_round_scaffold(
        vertices,
        epsilon1,
        round,
        ctx,
        |ctx, v| {
            let (rng, scratch) = ctx.rng_and_scratch();
            NoisyNeighbors::generate_with(g, layer, v, epsilon1, rng, scratch.perturb_scratch())
        },
        NoisyNeighbors::message_bytes,
    )?;
    Ok(RrRound {
        noisy,
        flip_probability,
    })
}

/// The **packed-native** form of [`randomized_response_round`]: identical
/// budget charge, transcript records, and RNG stream consumption (both run
/// through `rr_round_scaffold`), but each vertex's noisy row is produced
/// directly in bit-packed words — the engine's cached true-adjacency
/// bitmaps (when the environment carries a warm store) are OR-ed in
/// word-wise instead of re-walking the id list.
///
/// Every round-1 consumer on the estimation hot path routes through this;
/// the list form remains for callers that need ids. For the same seed the
/// packed rows contain exactly the bits of the list round's output, so
/// downstream estimates are byte-identical whichever round ran.
///
/// # Errors
///
/// Fails if the charge would exceed the run's total budget.
pub fn randomized_response_round_packed(
    env: ProtocolEnv<'_>,
    layer: Layer,
    vertices: &[VertexId],
    epsilon1: PrivacyBudget,
    round: u32,
    ctx: &mut RoundContext<'_>,
) -> Result<RrRoundPacked> {
    let (noisy, flip_probability) = rr_round_scaffold(
        vertices,
        epsilon1,
        round,
        ctx,
        |ctx, v| {
            let true_packed = env.round1_true_bitmap(layer, v);
            let (rng, scratch) = ctx.rng_and_scratch();
            NoisyNeighborsPacked::generate_with(
                env.graph,
                layer,
                v,
                epsilon1,
                rng,
                scratch.perturb_scratch(),
                true_packed,
            )
        },
        NoisyNeighborsPacked::message_bytes,
    )?;
    Ok(RrRoundPacked {
        noisy,
        flip_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoundContext;
    use ldp::transcript::Direction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(3, 10, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 9)]).unwrap()
    }

    #[test]
    fn query_validation() {
        let g = toy();
        assert!(Query::new(Layer::Upper, 0, 1).validate(&g).is_ok());
        assert!(Query::new(Layer::Upper, 0, 0).validate(&g).is_err());
        assert!(Query::new(Layer::Upper, 0, 9).validate(&g).is_err());
        assert!(Query::new(Layer::Lower, 0, 9).validate(&g).is_ok());
    }

    #[test]
    fn query_exact_count_and_swap() {
        let g = toy();
        let q = Query::new(Layer::Upper, 0, 1);
        assert_eq!(q.exact_count(&g).unwrap(), 1);
        assert_eq!(q.swapped().exact_count(&g).unwrap(), 1);
        assert_eq!(q.swapped().u, 1);
        assert_eq!(q.opposite_size(&g), 10);
        assert_eq!(Query::new(Layer::Lower, 0, 1).opposite_size(&g), 3);
    }

    #[test]
    fn rr_round_charges_budget_once_and_records_uploads() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = RoundContext::begin_detailed(2.0, &mut rng).unwrap();
        let eps1 = PrivacyBudget::new(1.0).unwrap();
        let round =
            randomized_response_round(&g, Layer::Upper, &[0, 1], eps1, 1, &mut ctx).unwrap();
        assert_eq!(round.noisy.len(), 2);
        assert!((round.flip_probability - 1.0 / (1.0 + 1.0f64.exp())).abs() < 1e-12);
        let (budget, transcript) = ctx.finish();
        assert!((budget.consumed() - 1.0).abs() < 1e-12);
        assert_eq!(transcript.messages().len(), 2);
        assert_eq!(transcript.messages()[0].label, "noisy-edges(v0)");
        assert_eq!(transcript.messages()[1].label, "noisy-edges(v1)");
        assert_eq!(budget.charges()[0].label, "round1:rr");
        assert_eq!(transcript.rounds(), 1);
    }

    #[test]
    fn packed_round_matches_list_round_exactly() {
        let g = toy();
        let eps1 = PrivacyBudget::new(1.0).unwrap();
        for seed in [3u64, 41] {
            let mut rng_list = StdRng::seed_from_u64(seed);
            let mut rng_packed = StdRng::seed_from_u64(seed);
            let mut ctx_list = RoundContext::begin_detailed(2.0, &mut rng_list).unwrap();
            let list_round =
                randomized_response_round(&g, Layer::Upper, &[0, 1], eps1, 1, &mut ctx_list)
                    .unwrap();
            let mut ctx_packed = RoundContext::begin_detailed(2.0, &mut rng_packed).unwrap();
            let packed_round = randomized_response_round_packed(
                ProtocolEnv::uncached(&g),
                Layer::Upper,
                &[0, 1],
                eps1,
                1,
                &mut ctx_packed,
            )
            .unwrap();
            assert_eq!(
                list_round.flip_probability.to_bits(),
                packed_round.flip_probability.to_bits()
            );
            for (list, packed) in list_round.noisy.iter().zip(&packed_round.noisy) {
                assert_eq!(packed.set().to_sorted_ids(), list.neighbors());
                assert_eq!(packed.materialize(), list.clone());
            }
            // Same transcript records, same budget charge, same RNG state.
            let (budget_a, transcript_a) = ctx_list.finish();
            let (budget_b, transcript_b) = ctx_packed.finish();
            assert_eq!(transcript_a, transcript_b);
            assert_eq!(budget_a.consumed().to_bits(), budget_b.consumed().to_bits());
            use rand::RngCore;
            assert_eq!(rng_list.next_u64(), rng_packed.next_u64());
        }
    }

    #[test]
    fn packed_round_uses_cached_bitmaps_bit_identically() {
        use crate::engine::AdjacencyStore;
        // Dense vertices over a small universe so the store path engages.
        let edges = (0..40u32)
            .map(|v| (0u32, v))
            .chain((20..60u32).map(|v| (1u32, v)));
        let g = BipartiteGraph::from_edges(2, 64, edges).unwrap();
        let store = AdjacencyStore::new(&g);
        let eps1 = PrivacyBudget::new(1.0).unwrap();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let mut ctx_a = RoundContext::begin(2.0, &mut rng_a).unwrap();
        let uncached = randomized_response_round_packed(
            ProtocolEnv::uncached(&g),
            Layer::Upper,
            &[0, 1],
            eps1,
            1,
            &mut ctx_a,
        )
        .unwrap();
        let mut ctx_b = RoundContext::begin(2.0, &mut rng_b).unwrap();
        let cached = randomized_response_round_packed(
            ProtocolEnv::cached(&g, &store),
            Layer::Upper,
            &[0, 1],
            eps1,
            1,
            &mut ctx_b,
        )
        .unwrap();
        for (a, b) in uncached.noisy.iter().zip(&cached.noisy) {
            assert_eq!(a.set(), b.set());
        }
        // The dense sources' bitmaps were built for the word-wise OR.
        assert_eq!(store.cached_count(Layer::Upper), 2);
    }

    #[test]
    fn rr_round_rejects_overcharge() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = RoundContext::begin(0.5, &mut rng).unwrap();
        let eps1 = PrivacyBudget::new(1.0).unwrap();
        let err = randomized_response_round(&g, Layer::Upper, &[0], eps1, 1, &mut ctx);
        assert!(err.is_err());
    }

    #[test]
    fn download_and_scalar_records() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctx = RoundContext::begin(1.0, &mut rng).unwrap();
        let list = NoisyNeighbors::from_parts(0, Layer::Upper, 10, 1.0, vec![1, 2, 3]);
        ctx.record_download(2, "noisy-edges(w) -> u", &list);
        ctx.record_scalar_upload(2, "estimator(f_u)");
        let (_, t) = ctx.finish();
        assert_eq!(t.total_bytes(), 3 * EDGE_BYTES + SCALAR_BYTES);
        assert_eq!(t.bytes_in_direction(Direction::Download), 3 * EDGE_BYTES);
    }
}

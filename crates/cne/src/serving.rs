//! Epoch-pinned double-buffered serving: queries never wait on a splice.
//!
//! This is the single-process serving tier. The multi-process half —
//! shard-worker processes each owning one `ServingEngine` over a
//! vertex-range shard, behind a coordinator that fans queries out over
//! Unix sockets and concatenates byte-identical reports — lives in the
//! `cluster` crate, which builds directly on this module ([`ServingStats`]
//! rolls up per worker, the shared [`UpdateLog`] feeds the replicated
//! per-shard delta streams).
//!
//! [`EstimationEngine::apply_updates`] stops the world — the splice holds
//! `&mut self`, so every reader either blocks behind it or eats a
//! [`CneError::StaleGeneration`](crate::CneError::StaleGeneration). This module decouples query latency from
//! ingestion: a [`ServingEngine`] keeps **two** engines and swaps which one
//! serves, so readers always query a warm, immutable snapshot while a
//! dedicated writer thread splices into the other buffer.
//!
//! # Serving lifecycle
//!
//! The lifecycle of every query is *pin → query → retire*:
//!
//! 1. **Pin.** [`ServingEngine::snapshot`] reads the current epoch and
//!    claims a pin slot — one CAS plus two epoch loads, no locks and no
//!    allocation. The epoch's parity names the live buffer; the pin
//!    announces "a reader is inside epoch `e`" to the writer. The
//!    [`EngineSnapshot`] guard also holds a `RwLock` read guard on the live
//!    buffer, but by protocol that acquisition never contends: the writer
//!    only write-locks a buffer once no reader is pinned to its epoch, so
//!    the guard is a safety net (a protocol violation degrades to a writer
//!    stall, never to a torn read), not a reader-side lock — acquiring it
//!    is a single uncontended atomic.
//! 2. **Query.** The guard derefs to a plain [`EstimationEngine`]; run
//!    [`estimate`](EstimationEngine::estimate),
//!    [`estimate_batch`](EstimationEngine::estimate_batch), or
//!    [`estimate_many_targets`](EstimationEngine::estimate_many_targets)
//!    on it. The buffer is immutable while pinned, so results are
//!    byte-identical to a cold engine built at the snapshot's epoch — the
//!    swap-correctness suite (`tests/serving_swap.rs`) pins exactly that.
//! 3. **Retire.** Dropping the snapshot frees the pin slot. The *old*
//!    buffer is recycled only once the last reader pinned to its epoch
//!    drops — epoch-based reclamation: the writer's next cycle spins until
//!    every pin slot is free or pinned at the current epoch before it
//!    write-locks the offline buffer.
//!
//! # Writer cadence
//!
//! The writer thread wakes every [`ServingConfig::poll_interval`] (or on
//! [`ServingEngine::flush`]) and drains the shared [`UpdateLog`] in bounded
//! batches of at most [`ServingConfig::max_deltas_per_cycle`] deltas. Each
//! cycle replays the previous cycle's batch into the offline buffer (so
//! both buffers see the identical batch sequence — the *backlog*), applies
//! the freshly drained batch, pre-warms the touched vertices' bitmaps, and
//! publishes by bumping the epoch. Coalescing is the point: one drained
//! batch is one CSR merge pass regardless of how many producers appended,
//! so sustained ingest cost is `O(n + m)` per cycle, not per arrival.
//!
//! # Pre-warm policy
//!
//! A splice invalidates the touched vertices' cached bitmaps. With
//! [`ServingConfig::prewarm`] (the default) the writer rebuilds exactly
//! those bitmaps ([`EstimationEngine::warm_touched`]) *before* publishing,
//! so the first query against a fresh snapshot is as warm as the last one
//! against the old snapshot. Sparse vertices keep falling back to scratch
//! packing, same as [`AdjacencyStore::warm`](crate::AdjacencyStore::warm).
//!
//! # Persistence & fast restart
//!
//! A serving tier can be checkpointed to disk and rebuilt without paying
//! the cold text-parse + warm cost:
//!
//! * [`ServingEngine::write_snapshot`] pins the live buffer (the same
//!   reader protocol as a query — a maintain()-quiet point where the
//!   buffer is immutable) and writes a versioned binary
//!   [`bigraph::snapshot`] file: the CSR arrays plus the packed bitmaps
//!   of every dense vertex, stamped with the graph epoch **and the exact
//!   log sequence number the pinned buffer covers**. That sequence is
//!   tracked per buffer (`buffer_seq`) and stored *before* the epoch
//!   bump that publishes the buffer, so the stamp can never drift from
//!   the state being captured — exactness matters because `AddVertex`
//!   replay is not idempotent.
//! * [`ServingEngine::bootstrap_from_snapshot`] is the inverse: both
//!   buffers adopt the snapshot ([`EstimationEngine::from_snapshot`] —
//!   packed sections go straight into the adjacency caches, no re-pack),
//!   and the writer starts with an empty log. Estimates served from a
//!   bootstrapped tier are byte-identical to one built from text at the
//!   same state.
//! * Catch-up composes through the log: a consumer holding a retained
//!   [`UpdateLog`] (see [`UpdateLog::with_retention`]) replays the tail
//!   past the snapshot's pinned sequence
//!   ([`UpdateLog::replay_from`]) into the bootstrapped tier — the
//!   restart path the `cluster` coordinator uses to revive a dead shard
//!   worker in milliseconds.
//!
//! The `snapshot-tool` binary (`cargo run --bin snapshot-tool`) writes,
//! inspects, and verifies the same files from the command line.
//!
//! # Staleness is a retry hint
//!
//! Generation-checked entry points on the serving tier
//! ([`ServingEngine::estimate_at`] / [`estimate_batch_at`](ServingEngine::estimate_batch_at))
//! treat [`CneError::StaleGeneration`](crate::CneError::StaleGeneration) as a hint, not an error: on a
//! generation miss they transparently re-run on the freshly pinned
//! snapshot and report the generation actually served. Callers that manage
//! their own engine use
//! [`EstimationEngine::estimate_with_retry`] for the same bounded-retry
//! semantics.
//!
//! ```
//! use bigraph::{BipartiteGraph, GraphDelta, Layer};
//! use cne::serving::ServingEngine;
//!
//! let g = BipartiteGraph::from_edges(2, 8, [(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap();
//! let serving = ServingEngine::new(g);
//!
//! // Producers append from any thread; the writer publishes asynchronously.
//! serving.append(GraphDelta::AddEdge { upper: 0, lower: 2 });
//! serving.flush(); // wait until the append is live (tests/demos only)
//!
//! {
//!     let snap = serving.snapshot();
//!     assert!(snap.graph().has_edge(0, 2));
//!     assert_eq!(snap.generation(), 1);
//! } // drop the snapshot: it borrows the serving tier
//! let engine = serving.into_engine(); // tear down into the final state
//! assert!(engine.graph().has_edge(0, 2));
//! ```

use crate::batch::BatchReport;
use crate::engine::EstimationEngine;
use crate::error::Result;
use crate::estimate::{AlgorithmKind, EstimateReport};
use crate::protocol::Query;
use bigraph::delta::{GraphDelta, UpdateBatch, UpdateLog};
use bigraph::{BipartiteGraph, Layer, VertexId};
use rand::RngCore;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::thread;
use std::time::Duration;

/// Pin-slot sentinel: no reader is pinned through this slot.
const FREE: u64 = u64::MAX;

/// Log2 lag-histogram size: bucket 0 counts lag 0, bucket `k ≥ 1` counts
/// lags in `[2^(k-1), 2^k)`. 40 buckets cover every lag below 2^39 deltas;
/// anything larger saturates into the last bucket.
const LAG_BUCKETS: usize = 40;

/// The histogram bucket for an observed snapshot lag.
fn lag_bucket(lag: u64) -> usize {
    if lag == 0 {
        0
    } else {
        ((64 - lag.leading_zeros()) as usize).min(LAG_BUCKETS - 1)
    }
}

/// The `q`-quantile of a log2 lag histogram, reported as the **lower
/// bound** of the bucket holding the rank-`⌈q·total⌉` observation (so
/// p50 = 0 means at least half of all snapshots were fully caught up).
fn lag_percentile(hist: &[u64; LAG_BUCKETS], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (k, &count) in hist.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            return if k == 0 { 0 } else { 1u64 << (k - 1) };
        }
    }
    0
}

/// Tuning knobs for a [`ServingEngine`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Byte cap for each buffer's adjacency cache (see
    /// [`EstimationEngine::from_graph_with_cache_budget`]); `None` caches
    /// every dense vertex. The cap applies per buffer.
    pub cache_budget: Option<usize>,
    /// Upper bound on deltas drained and spliced per writer cycle. One
    /// cycle's drain is one `UpdateBatch` and therefore one CSR merge
    /// pass; larger values coalesce harder under bursty ingest at the
    /// cost of coarser rejection granularity (an invalid delta rejects
    /// the whole drained batch).
    pub max_deltas_per_cycle: usize,
    /// How long the writer sleeps when the log is empty. Ingest-to-publish
    /// latency is bounded by roughly this plus one splice.
    pub poll_interval: Duration,
    /// Rebuild the touched vertices' bitmaps before publishing a buffer
    /// (see the module-level pre-warm policy).
    pub prewarm: bool,
    /// Warm this layer's dense bitmaps in **both** buffers at
    /// construction, before the writer starts.
    pub warm_layer: Option<Layer>,
    /// Number of concurrent pinned snapshots supported without spinning.
    /// A reader that finds every slot claimed spins until one frees.
    pub pin_slots: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            cache_budget: None,
            max_deltas_per_cycle: 4096,
            poll_interval: Duration::from_micros(500),
            prewarm: true,
            warm_layer: None,
            pin_slots: 64,
        }
    }
}

/// Counters describing a [`ServingEngine`]'s ingest/publish state, from
/// [`ServingEngine::stats`]. All values are monotone except `ingest_lag`
/// and the lag percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingStats {
    /// Current published epoch (number of buffer swaps since start).
    pub epoch: u64,
    /// Deltas appended to the log so far (last allocated sequence number).
    pub appended: u64,
    /// Deltas published: every delta with sequence number `<= published`
    /// is either visible in the live buffer or was rejected.
    pub published: u64,
    /// Exact ingest lag in deltas: `appended - published`.
    pub ingest_lag: u64,
    /// Deltas dropped because their drained batch failed validation.
    pub rejected: u64,
    /// Snapshots pinned since start (the population the lag percentiles
    /// are computed over — each [`ServingEngine::snapshot`] records the
    /// ingest lag it observed at pin time).
    pub snapshots: u64,
    /// Median per-snapshot ingest lag, as the lower bound of its log2
    /// histogram bucket (0 means at least half of all snapshots were
    /// fully caught up; otherwise a power of two).
    pub lag_p50: u64,
    /// 95th-percentile per-snapshot ingest lag, bucketed like `lag_p50`.
    pub lag_p95: u64,
}

/// State shared between the serving handle, its snapshots, and the writer
/// thread.
struct Shared {
    /// The two engine buffers; the current epoch's parity selects the live
    /// one (`buffers[epoch & 1]`), the writer splices into the other.
    buffers: [RwLock<EstimationEngine<'static>>; 2],
    /// Published epoch. Bumped (with the write guard already released) to
    /// atomically swap which buffer serves.
    epoch: AtomicU64,
    /// Reader pin slots: `FREE`, or the epoch a reader is snapshotted at.
    pins: Box<[AtomicU64]>,
    /// Rotating hint so concurrent readers start their claim scan at
    /// different slots.
    claim_cursor: AtomicUsize,
    /// The ingestion log producers append to.
    log: UpdateLog,
    /// Tells the writer thread to drain the log and exit.
    shutdown: AtomicBool,
    /// Highest log sequence number covered by the live buffer.
    published_seq: AtomicU64,
    /// Highest log sequence number covered by each buffer, stored
    /// **before** the epoch bump that publishes it. A reader pinned to an
    /// epoch can read its buffer's entry race-free: the writer cannot
    /// republish (and so cannot restamp) that buffer until the pin drops.
    /// This is the exact sequence [`ServingEngine::write_snapshot`] stamps
    /// into snapshot files.
    buffer_seq: [AtomicU64; 2],
    /// Deltas dropped with their rejected batch.
    rejected: AtomicU64,
    /// Per-snapshot ingest-lag histogram in log2 buckets (`lag_bucket`).
    lag_hist: [AtomicU64; LAG_BUCKETS],
    /// Snapshots ever pinned (the histogram's total mass).
    snapshots: AtomicU64,
    /// Writer tuning, copied out of the construction config.
    max_deltas_per_cycle: usize,
    poll_interval: Duration,
    prewarm: bool,
}

impl Shared {
    /// Claims a pin slot by CAS, spinning if every slot is taken.
    fn claim_slot(&self, epoch: u64) -> usize {
        let n = self.pins.len();
        let start = self.claim_cursor.fetch_add(1, Ordering::Relaxed);
        loop {
            for i in 0..n {
                let at = (start + i) % n;
                if self.pins[at]
                    .compare_exchange(FREE, epoch, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    return at;
                }
            }
            thread::yield_now();
        }
    }

    /// Blocks until every pin slot is free or pinned at `epoch_now` (or
    /// later). Once true, no reader can still be inside a buffer older
    /// than `epoch_now`, and no *new* reader can pin an older epoch (the
    /// announce/re-check handshake in [`ServingEngine::snapshot`] forbids
    /// it), so the offline buffer is exclusively the writer's.
    fn wait_for_pins(&self, epoch_now: u64) {
        let mut spins = 0u32;
        loop {
            let clear = self.pins.iter().all(|slot| {
                let pinned = slot.load(Ordering::SeqCst);
                pinned == FREE || pinned >= epoch_now
            });
            if clear {
                return;
            }
            spins += 1;
            if spins < 64 {
                thread::yield_now();
            } else {
                // A reader is mid-query on the retiring buffer. Yielding
                // in a tight loop on a loaded core degenerates into a
                // context-switch storm that starves that very reader;
                // after a brief spin, cede the whole timeslice.
                thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

/// One writer cycle: replay the backlog and splice the freshly drained
/// batch into the offline buffer, pre-warm what the splices touched, and —
/// if anything was drained — publish by bumping the epoch.
fn apply_cycle(shared: &Shared, backlog: &mut Vec<UpdateBatch>, fresh: Option<UpdateBatch>) {
    let epoch_now = shared.epoch.load(Ordering::SeqCst);
    shared.wait_for_pins(epoch_now);
    let offline = ((epoch_now + 1) & 1) as usize;
    {
        let mut engine = shared.buffers[offline]
            .write()
            .expect("serving buffer poisoned");
        let mut receipts = Vec::new();
        // Coalesce the backlog replay and the fresh splice into ONE CSR
        // merge pass: concatenation preserves delta order, so the net
        // effect is identical to sequential application, and the merge's
        // fixed O(edges) cost is paid once per publish instead of once
        // per batch. Only if the combined batch is rejected do we fall
        // back to batch-at-a-time — the backlog already applied cleanly
        // to the other buffer from an identical state, so the offending
        // deltas must be in `fresh`.
        let combined: UpdateBatch = backlog
            .iter()
            .chain(fresh.iter())
            .flat_map(|b| b.deltas().iter().copied())
            .collect();
        match engine.apply_updates(&combined) {
            Ok(applied) => {
                if shared.prewarm {
                    receipts.push(applied);
                }
                backlog.clear();
                if let Some(batch) = fresh {
                    backlog.push(batch);
                }
            }
            Err(_) => {
                for batch in backlog.drain(..) {
                    let applied = engine
                        .apply_updates(&batch)
                        .expect("backlog batch must re-apply");
                    if shared.prewarm {
                        receipts.push(applied);
                    }
                }
                if let Some(batch) = fresh {
                    match engine.apply_updates(&batch) {
                        Ok(applied) => {
                            if shared.prewarm {
                                receipts.push(applied);
                            }
                            backlog.push(batch);
                        }
                        Err(_) => {
                            // Transactionally rejected: the buffer is
                            // untouched and the same batch would be
                            // rejected by the other buffer too, so
                            // dropping it keeps the buffers identical.
                            shared
                                .rejected
                                .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        for applied in &receipts {
            engine.warm_touched(applied);
        }
    }
    // Publish after the write guard is gone. Stamp the buffer's covered
    // sequence FIRST: once the epoch bump makes this buffer live, a reader
    // may pin it and read `buffer_seq` for a snapshot file, and the stamp
    // must already be in place (the writer cannot restamp until that pin
    // drops — its next cycle waits on pins before touching the buffer).
    shared.buffer_seq[offline].store(shared.log.drained(), Ordering::SeqCst);
    // Bump the epoch (readers now resolve to the freshly spliced buffer),
    // then advance the published sequence number so `flush` observes
    // epoch-before-seq.
    shared.epoch.store(epoch_now + 1, Ordering::SeqCst);
    shared
        .published_seq
        .store(shared.log.drained(), Ordering::SeqCst);
}

/// The writer thread body: drain → splice → pre-warm → publish, forever.
fn writer_loop(shared: &Shared) {
    // Batches already published into the live buffer but not yet replayed
    // into the offline one. At most one entry per completed cycle.
    let mut backlog: Vec<UpdateBatch> = Vec::new();
    loop {
        if let Some(fresh) = shared.log.drain_batch(shared.max_deltas_per_cycle) {
            apply_cycle(shared, &mut backlog, Some(fresh));
            continue; // immediately look for more before sleeping
        }
        if !backlog.is_empty() {
            // Idle: catch the offline buffer up without publishing, so the
            // next cycle splices one batch, not two.
            let epoch_now = shared.epoch.load(Ordering::SeqCst);
            shared.wait_for_pins(epoch_now);
            let offline = ((epoch_now + 1) & 1) as usize;
            let mut engine = shared.buffers[offline]
                .write()
                .expect("serving buffer poisoned");
            for batch in backlog.drain(..) {
                let applied = engine
                    .apply_updates(&batch)
                    .expect("backlog batch must re-apply");
                if shared.prewarm {
                    engine.warm_touched(&applied);
                }
            }
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        thread::park_timeout(shared.poll_interval);
    }
}

/// An epoch-pinned, immutable view of the live engine buffer.
///
/// Obtained from [`ServingEngine::snapshot`]; derefs to
/// [`EstimationEngine`], so every engine query API works on it unchanged.
/// While any snapshot of an epoch is alive, the writer never mutates that
/// epoch's buffer — dropping the snapshot is what retires it. Snapshots
/// are cheap (no allocation, no lock contention) but **hold back buffer
/// recycling**: a long-lived snapshot stalls the writer one full cycle
/// behind, so pin per query (or per small batch), not per session.
pub struct EngineSnapshot<'a> {
    /// Read guard on the live buffer; `None` only transiently in `drop`.
    guard: Option<RwLockReadGuard<'a, EstimationEngine<'static>>>,
    shared: &'a Shared,
    slot: usize,
    epoch: u64,
}

impl EngineSnapshot<'_> {
    /// The epoch this snapshot is pinned at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned engine's generation (effective update batches applied).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.engine().generation()
    }

    /// The pinned engine.
    #[must_use]
    pub fn engine(&self) -> &EstimationEngine<'static> {
        self.guard.as_ref().expect("snapshot guard present").deref()
    }

    /// The pinned graph.
    #[must_use]
    pub fn graph(&self) -> &BipartiteGraph {
        self.engine().graph()
    }
}

impl Deref for EngineSnapshot<'_> {
    type Target = EstimationEngine<'static>;

    fn deref(&self) -> &Self::Target {
        self.engine()
    }
}

impl Drop for EngineSnapshot<'_> {
    fn drop(&mut self) {
        // Release the read guard before the pin: once the slot reads FREE
        // the writer may write-lock this buffer, and the protocol promises
        // it will never find a reader still inside.
        self.guard = None;
        self.shared.pins[self.slot].store(FREE, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for EngineSnapshot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("epoch", &self.epoch)
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

/// A double-buffered serving tier over two [`EstimationEngine`]s: readers
/// query epoch-pinned snapshots while a writer thread drains the
/// [`UpdateLog`] and splices into the offline buffer, then swaps.
///
/// See the [module docs](self) for the full lifecycle. In short:
/// [`append`](ServingEngine::append) / [`extend`](ServingEngine::extend)
/// from any thread, [`snapshot`](ServingEngine::snapshot) to query, and
/// the writer keeps publishing in the background. Dropping the
/// `ServingEngine` drains the log and joins the writer;
/// [`into_engine`](ServingEngine::into_engine) additionally hands back the
/// final live buffer.
pub struct ServingEngine {
    shared: Arc<Shared>,
    writer: Option<thread::JoinHandle<()>>,
    /// Handle for unparking the writer without joining it.
    writer_thread: thread::Thread,
}

impl ServingEngine {
    /// Builds a serving tier over `graph` with the default
    /// [`ServingConfig`] and starts the writer thread.
    #[must_use]
    pub fn new(graph: BipartiteGraph) -> Self {
        Self::with_config(graph, ServingConfig::default())
    }

    /// [`ServingEngine::new`] with explicit tuning.
    ///
    /// Both buffers start as identical engines over `graph` (cloned once);
    /// `config.warm_layer` optionally pre-warms them before the writer
    /// starts.
    ///
    /// # Panics
    ///
    /// Panics if `config.pin_slots` is zero or the writer thread cannot be
    /// spawned.
    #[must_use]
    pub fn with_config(graph: BipartiteGraph, config: ServingConfig) -> Self {
        let build = |g: BipartiteGraph| match config.cache_budget {
            Some(bytes) => EstimationEngine::from_graph_with_cache_budget(g, bytes),
            None => EstimationEngine::from_graph(g),
        };
        let a = build(graph.clone());
        let b = build(graph);
        if let Some(layer) = config.warm_layer {
            a.warm(layer);
            b.warm(layer);
        }
        Self::from_buffers(a, b, config)
    }

    /// Builds a serving tier whose buffers **adopt a loaded snapshot**
    /// instead of warming from scratch: both buffers come from
    /// [`EstimationEngine::from_snapshot`], so the packed dense bitmaps of
    /// *both* layers are installed by memcpy and the tier serves its first
    /// query as warm as a text-built, [`warm`](EstimationEngine::warm)-ed
    /// one — byte-identically (see the module-level
    /// "Persistence & fast restart" section). `config.warm_layer` is
    /// ignored: the snapshot's packed sections already cover every dense
    /// vertex a warm pass would build.
    ///
    /// The tier's ingestion log starts empty; catching up past the
    /// snapshot's pinned sequence is the caller's job (feed the tail from
    /// a retained log — [`bigraph::UpdateLog::replay_from`] — through
    /// [`extend`](ServingEngine::extend)).
    ///
    /// # Panics
    ///
    /// Panics if `config.pin_slots` is zero or the writer thread cannot
    /// be spawned.
    #[must_use]
    pub fn bootstrap_from_snapshot(
        snapshot: &bigraph::snapshot::GraphSnapshot,
        config: ServingConfig,
    ) -> Self {
        let build = || match config.cache_budget {
            Some(bytes) => EstimationEngine::from_snapshot_with_cache_budget(snapshot, bytes),
            None => EstimationEngine::from_snapshot(snapshot),
        };
        let (a, b) = (build(), build());
        Self::from_buffers(a, b, config)
    }

    /// Shared tail of construction: wrap two identical buffers in the
    /// swap machinery and start the writer.
    fn from_buffers(
        a: EstimationEngine<'static>,
        b: EstimationEngine<'static>,
        config: ServingConfig,
    ) -> Self {
        assert!(config.pin_slots > 0, "pin_slots must be at least 1");
        let shared = Arc::new(Shared {
            buffers: [RwLock::new(a), RwLock::new(b)],
            epoch: AtomicU64::new(0),
            pins: (0..config.pin_slots)
                .map(|_| AtomicU64::new(FREE))
                .collect(),
            claim_cursor: AtomicUsize::new(0),
            log: UpdateLog::new(),
            shutdown: AtomicBool::new(false),
            published_seq: AtomicU64::new(0),
            buffer_seq: [AtomicU64::new(0), AtomicU64::new(0)],
            rejected: AtomicU64::new(0),
            lag_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            snapshots: AtomicU64::new(0),
            max_deltas_per_cycle: config.max_deltas_per_cycle.max(1),
            poll_interval: config.poll_interval,
            prewarm: config.prewarm,
        });
        let writer_shared = Arc::clone(&shared);
        let writer = thread::Builder::new()
            .name("cne-serving-writer".into())
            .spawn(move || writer_loop(&writer_shared))
            .expect("spawn serving writer");
        let writer_thread = writer.thread().clone();
        Self {
            shared,
            writer: Some(writer),
            writer_thread,
        }
    }

    /// The shared ingestion log. Exposed for lag inspection
    /// ([`UpdateLog::lag`]) and bulk producers; appending through
    /// [`ServingEngine::append`] / [`extend`](ServingEngine::extend) is
    /// equivalent.
    #[must_use]
    pub fn log(&self) -> &UpdateLog {
        &self.shared.log
    }

    /// Appends one delta to the ingestion log, returning its sequence
    /// number. The writer picks it up within one poll interval.
    pub fn append(&self, delta: GraphDelta) -> u64 {
        self.shared.log.append(delta)
    }

    /// Appends many deltas, returning the last sequence number assigned.
    pub fn extend<I: IntoIterator<Item = GraphDelta>>(&self, deltas: I) -> u64 {
        self.shared.log.extend(deltas)
    }

    /// Pins the current epoch and returns a queryable snapshot guard.
    ///
    /// Lock-free on the reader side: one slot CAS, an epoch announce and
    /// re-check, and an uncontended-by-protocol `try_read`. Never blocks
    /// on a splice — while the writer splices the offline buffer, this
    /// keeps resolving to the live one.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot<'_> {
        let shared: &Shared = &self.shared;
        let mut epoch = shared.epoch.load(Ordering::SeqCst);
        let slot = shared.claim_slot(epoch);
        loop {
            // Announce the epoch we intend to read, then re-check it. The
            // writer publishes a new epoch *before* scanning pins (both
            // SeqCst), so if the epoch is unchanged after our announce the
            // writer's next scan is guaranteed to see this pin and wait —
            // buffers[epoch & 1] cannot be write-locked underneath us.
            shared.pins[slot].store(epoch, Ordering::SeqCst);
            if shared.epoch.load(Ordering::SeqCst) == epoch {
                if let Ok(guard) = shared.buffers[(epoch & 1) as usize].try_read() {
                    // Record the lag this reader observed at pin time; the
                    // histogram feeds the p50/p95 fields of `stats`.
                    let lag = shared
                        .log
                        .appended()
                        .saturating_sub(shared.published_seq.load(Ordering::Relaxed));
                    shared.lag_hist[lag_bucket(lag)].fetch_add(1, Ordering::Relaxed);
                    shared.snapshots.fetch_add(1, Ordering::Relaxed);
                    return EngineSnapshot {
                        guard: Some(guard),
                        shared,
                        slot,
                        epoch,
                    };
                }
            }
            // The epoch moved mid-pin (or the safety-net guard was briefly
            // held): chase the new epoch and re-announce.
            thread::yield_now();
            epoch = shared.epoch.load(Ordering::SeqCst);
        }
    }

    /// [`EstimationEngine::estimate`] on a freshly pinned snapshot.
    ///
    /// # Errors
    ///
    /// The contract of [`EstimationEngine::estimate`].
    pub fn estimate(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<EstimateReport> {
        self.snapshot().estimate(query, kind, epsilon, rng)
    }

    /// [`EstimationEngine::estimate_batch`] on a freshly pinned snapshot.
    ///
    /// # Errors
    ///
    /// The contract of [`EstimationEngine::estimate_batch`].
    pub fn estimate_batch(
        &self,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<BatchReport> {
        self.snapshot()
            .estimate_batch(layer, target, candidates, epsilon, rng)
    }

    /// [`EstimationEngine::estimate_many_targets`] on a freshly pinned
    /// snapshot.
    ///
    /// # Errors
    ///
    /// The contract of [`EstimationEngine::estimate_many_targets`].
    pub fn estimate_many_targets(
        &self,
        layer: Layer,
        targets: &[VertexId],
        candidates: &[VertexId],
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<BatchReport>> {
        self.snapshot()
            .estimate_many_targets(layer, targets, candidates, epsilon, seed)
    }

    /// Generation-checked estimate with transparent re-resolution: runs on
    /// a freshly pinned snapshot, and if `generation` is stale (updates
    /// published since the caller derived its state) the query is re-run
    /// on the snapshot's current state instead of erroring. Returns the
    /// report together with the generation actually served, so the caller
    /// can refresh its cursor.
    ///
    /// A stale first attempt consumes no randomness from `rng` (the
    /// generation check runs before any protocol round), so the served
    /// report is byte-identical to a first-try success at that generation.
    ///
    /// # Errors
    ///
    /// The contract of [`EstimationEngine::estimate`];
    /// [`CneError::StaleGeneration`](crate::CneError::StaleGeneration) is consumed internally.
    pub fn estimate_at(
        &self,
        generation: u64,
        query: &Query,
        kind: AlgorithmKind,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<(EstimateReport, u64)> {
        let snap = self.snapshot();
        let mut cursor = generation;
        let report =
            snap.engine()
                .estimate_with_retry(&mut cursor, query, kind, epsilon, rng, 1)?;
        Ok((report, cursor))
    }

    /// Batch counterpart of [`ServingEngine::estimate_at`]: generation
    /// miss → transparent re-run on the pinned snapshot, returning the
    /// generation served.
    ///
    /// # Errors
    ///
    /// The contract of [`EstimationEngine::estimate_batch`];
    /// [`CneError::StaleGeneration`](crate::CneError::StaleGeneration) is consumed internally.
    pub fn estimate_batch_at(
        &self,
        generation: u64,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<(BatchReport, u64)> {
        let snap = self.snapshot();
        let mut cursor = generation;
        let report = snap.engine().estimate_batch_with_retry(
            &mut cursor,
            layer,
            target,
            candidates,
            epsilon,
            rng,
            1,
        )?;
        Ok((report, cursor))
    }

    /// Blocks until every delta appended before this call is published
    /// (visible in the live buffer or rejected). For tests, demos, and
    /// orderly teardown — serving paths should read
    /// [`stats`](ServingEngine::stats) instead of waiting.
    ///
    /// # Panics
    ///
    /// Panics if the writer thread died (a poisoned buffer).
    pub fn flush(&self) {
        let target = self.shared.log.appended();
        self.writer_thread.unpark();
        while self.shared.published_seq.load(Ordering::SeqCst) < target {
            let writer_alive = self
                .writer
                .as_ref()
                .map(|w| !w.is_finished())
                .unwrap_or(false);
            assert!(writer_alive, "serving writer thread is gone");
            self.writer_thread.unpark();
            // Sleep, don't yield: a yield loop on a loaded core degenerates
            // into a context-switch storm that starves the very writer this
            // call is waiting on. A real sleep cedes the whole timeslice.
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Current ingest/publish counters.
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        let published = self.shared.published_seq.load(Ordering::SeqCst);
        let appended = self.shared.log.appended();
        let snapshots = self.shared.snapshots.load(Ordering::Relaxed);
        let hist: [u64; LAG_BUCKETS] =
            std::array::from_fn(|k| self.shared.lag_hist[k].load(Ordering::Relaxed));
        ServingStats {
            epoch: self.shared.epoch.load(Ordering::SeqCst),
            appended,
            published,
            ingest_lag: appended.saturating_sub(published),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            snapshots,
            lag_p50: lag_percentile(&hist, snapshots, 0.50),
            lag_p95: lag_percentile(&hist, snapshots, 0.95),
        }
    }

    /// Writes a versioned binary snapshot of the live buffer to `path`,
    /// returning the log sequence number the file covers (its stamp).
    ///
    /// The buffer is pinned for the duration — the same lock-free reader
    /// protocol as a query, so this is a maintain()-quiet point: the
    /// writer cannot splice or restamp the pinned buffer, and the
    /// captured CSR, packed bitmaps, epoch, and sequence stamp are
    /// mutually consistent by construction. Ingestion continues
    /// concurrently; deltas published after the pin land in later
    /// snapshots.
    ///
    /// The returned sequence is relative to **this tier's own log**
    /// ([`ServingEngine::log`]): a delta is covered iff its sequence is
    /// `<=` the stamp. Reload with
    /// [`bootstrap_from_snapshot`](ServingEngine::bootstrap_from_snapshot)
    /// and replay any retained tail past the stamp.
    ///
    /// # Errors
    ///
    /// [`bigraph::snapshot::SnapshotError::Io`] when the file cannot be
    /// written. The tier itself is unaffected by a failed write.
    pub fn write_snapshot(
        &self,
        path: &std::path::Path,
    ) -> std::result::Result<u64, bigraph::snapshot::SnapshotError> {
        let image = self.capture_snapshot();
        let seq = image.log_seq();
        image.write_to(path)?;
        Ok(seq)
    }

    /// Captures the same quiet-point image as
    /// [`write_snapshot`](ServingEngine::write_snapshot) but keeps it in
    /// memory instead of writing a file — for consumers that cut the
    /// image further before it lands on disk (a sharded coordinator
    /// restricting it per shard during a rebalance). The pinned log
    /// sequence is carried in the returned snapshot
    /// ([`GraphSnapshot::log_seq`](bigraph::snapshot::GraphSnapshot::log_seq)).
    #[must_use]
    pub fn capture_snapshot(&self) -> bigraph::snapshot::GraphSnapshot {
        let snap = self.snapshot();
        // Race-free while pinned: the writer stamps a buffer's sequence
        // before publishing it and cannot republish this buffer until the
        // pin drops (its cycle waits on pins first).
        let seq = self.shared.buffer_seq[(snap.epoch() & 1) as usize].load(Ordering::SeqCst);
        bigraph::snapshot::GraphSnapshot::capture(snap.graph(), seq)
    }

    /// Drains the log, stops the writer, and returns the final live
    /// engine — the inverse of construction, for handing the graph back
    /// to a single-owner workflow (checkpointing, re-sharding, tests).
    #[must_use]
    pub fn into_engine(mut self) -> EstimationEngine<'static> {
        self.flush();
        self.stop_writer();
        let shared = Arc::clone(&self.shared);
        drop(self); // releases the handle's Arc; the writer's clone is gone
        let shared = Arc::into_inner(shared)
            .expect("no snapshots can outlive the serving engine they borrow");
        let epoch = shared.epoch.into_inner();
        let [a, b] = shared.buffers;
        let live = if epoch & 1 == 0 { a } else { b };
        live.into_inner().expect("serving buffer poisoned")
    }

    /// Signals shutdown and joins the writer (drains the log first).
    fn stop_writer(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.writer_thread.unpark();
        if let Some(writer) = self.writer.take() {
            if writer.join().is_err() {
                // The writer only panics on a poisoned buffer; propagating
                // from Drop would abort, so surface it on the next access.
            }
        }
    }
}

impl Drop for ServingEngine {
    fn drop(&mut self) {
        self.stop_writer();
    }
}

impl std::fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingEngine")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_buckets_are_log2_with_zero_special_cased() {
        assert_eq!(lag_bucket(0), 0);
        assert_eq!(lag_bucket(1), 1);
        assert_eq!(lag_bucket(2), 2);
        assert_eq!(lag_bucket(3), 2);
        assert_eq!(lag_bucket(4), 3);
        assert_eq!(lag_bucket(1023), 10);
        assert_eq!(lag_bucket(1024), 11);
        assert_eq!(lag_bucket(u64::MAX), LAG_BUCKETS - 1);
    }

    #[test]
    fn lag_percentiles_report_bucket_lower_bounds() {
        let mut hist = [0u64; LAG_BUCKETS];
        assert_eq!(lag_percentile(&hist, 0, 0.5), 0);
        // 60 caught-up snapshots, 30 at lag ∈ [4,8), 10 at lag ∈ [64,128).
        hist[0] = 60;
        hist[3] = 30;
        hist[7] = 10;
        let total = 100;
        assert_eq!(lag_percentile(&hist, total, 0.50), 0);
        assert_eq!(lag_percentile(&hist, total, 0.75), 4);
        assert_eq!(lag_percentile(&hist, total, 0.95), 64);
        assert_eq!(lag_percentile(&hist, total, 1.0), 64);
    }

    #[test]
    fn stats_surface_snapshot_lag_percentiles() {
        let g =
            bigraph::BipartiteGraph::from_edges(2, 4, [(0, 0), (0, 1), (1, 1), (1, 2)]).unwrap();
        let serving = ServingEngine::new(g);
        for _ in 0..10 {
            let _snap = serving.snapshot();
        }
        serving.flush();
        let stats = serving.stats();
        assert_eq!(stats.snapshots, 10);
        // No ingest happened, so every snapshot observed zero lag.
        assert_eq!(stats.lag_p50, 0);
        assert_eq!(stats.lag_p95, 0);
        drop(serving);
    }
}

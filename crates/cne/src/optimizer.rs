//! Privacy-budget allocation optimisation for the double-source estimator.
//!
//! The MultiR-DS algorithm chooses the randomized-response budget `ε₁` and the
//! estimator weight `α` that minimise the analytic L2 loss
//! `F(ε₁, α) = Var(α f̃_u + (1−α) f̃_w)` of Theorem 8, given (noisy estimates
//! of) the query-vertex degrees and the budget left after degree estimation.
//!
//! Two structural facts make the optimisation tractable:
//!
//! * for **fixed ε₁**, `F` is a convex quadratic in `α`, whose minimiser has
//!   the closed form `α* = (A·d_w + B) / (A·(d_u + d_w) + 2B)` where
//!   `A = p(1−p)/(1−2p)²` and `B = 2(1−p)²/((1−2p)² ε₂²)`;
//! * substituting `α*` leaves a smooth one-dimensional function of `ε₁` on
//!   `(0, ε)`, which we minimise with Newton's method on its derivative
//!   (finite-difference derivatives), falling back to golden-section search
//!   whenever Newton wanders outside the feasible interval or fails to
//!   converge — the paper uses Newton's method, and the fallback guarantees a
//!   near-optimal answer on every input.

use crate::loss::{double_source_l2, phi_variance, single_source_laplace_variance};
use serde::{Deserialize, Serialize};

/// Result of optimising the double-source loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizedAllocation {
    /// Budget allocated to the randomized-response round.
    pub epsilon1: f64,
    /// Budget allocated to the Laplace mechanism round.
    pub epsilon2: f64,
    /// Weight of the `u`-side single-source estimator.
    pub alpha: f64,
    /// The analytic L2 loss at the chosen point.
    pub loss: f64,
}

/// The closed-form optimal `α` for fixed `ε₁`, `ε₂` (see module docs).
///
/// Degenerate degree inputs (zero or negative after noise) are clamped to a
/// small positive value so the formula stays well defined.
#[must_use]
pub fn optimal_alpha(degree_u: f64, degree_w: f64, epsilon1: f64, epsilon2: f64) -> f64 {
    let du = degree_u.max(1e-9);
    let dw = degree_w.max(1e-9);
    let a = phi_variance(epsilon1);
    let b = single_source_laplace_variance(epsilon1, epsilon2);
    let alpha = (a * dw + b) / (a * (du + dw) + 2.0 * b);
    alpha.clamp(0.0, 1.0)
}

/// The loss at fixed `ε₁` with `ε₂ = ε_total − ε₁` and the optimal `α`.
fn profile_loss(degree_u: f64, degree_w: f64, epsilon1: f64, epsilon_total: f64) -> f64 {
    let epsilon2 = epsilon_total - epsilon1;
    let alpha = optimal_alpha(degree_u, degree_w, epsilon1, epsilon2);
    double_source_l2(degree_u, degree_w, alpha, epsilon1, epsilon2)
}

/// Minimises `F(ε₁, α)` over `ε₁ ∈ (0, ε_total)` and `α ∈ [0, 1]`.
///
/// `epsilon_total` is the budget available for RR **plus** Laplace
/// (i.e. `ε − ε₀` for MultiR-DS, the full `ε` for MultiR-DS*). Degrees may be
/// noisy estimates; non-positive values are clamped inside [`optimal_alpha`].
#[must_use]
pub fn optimize_double_source(
    degree_u: f64,
    degree_w: f64,
    epsilon_total: f64,
) -> OptimizedAllocation {
    let lo = epsilon_total * 1e-3;
    let hi = epsilon_total * (1.0 - 1e-3);

    // Newton's method on g(ε₁) = d/dε₁ profile_loss, with finite differences.
    let f = |e1: f64| profile_loss(degree_u, degree_w, e1, epsilon_total);
    let newton = newton_minimize_1d(f, epsilon_total * 0.5, lo, hi);
    let golden = golden_section_minimize(f, lo, hi, 1e-9);

    // Take whichever candidate achieves the lower loss; Newton occasionally
    // converges to the boundary of its basin on extreme degree imbalances.
    let epsilon1 = match newton {
        Some(e1) if f(e1) <= f(golden) => e1,
        _ => golden,
    };
    let epsilon2 = epsilon_total - epsilon1;
    let alpha = optimal_alpha(degree_u, degree_w, epsilon1, epsilon2);
    OptimizedAllocation {
        epsilon1,
        epsilon2,
        alpha,
        loss: double_source_l2(degree_u, degree_w, alpha, epsilon1, epsilon2),
    }
}

/// Minimises the single-source loss (α pinned to 1) over the ε₁/ε₂ split.
/// This is the "optimised MultiR-SS" variant the paper mentions as a special
/// case of MultiR-DS; exposed for the ablation benchmarks.
#[must_use]
pub fn optimize_single_source(degree_u: f64, epsilon_total: f64) -> OptimizedAllocation {
    let lo = epsilon_total * 1e-3;
    let hi = epsilon_total * (1.0 - 1e-3);
    let f = |e1: f64| crate::loss::single_source_l2(degree_u.max(1e-9), e1, epsilon_total - e1);
    let newton = newton_minimize_1d(f, epsilon_total * 0.5, lo, hi);
    let golden = golden_section_minimize(f, lo, hi, 1e-9);
    let epsilon1 = match newton {
        Some(e1) if f(e1) <= f(golden) => e1,
        _ => golden,
    };
    OptimizedAllocation {
        epsilon1,
        epsilon2: epsilon_total - epsilon1,
        alpha: 1.0,
        loss: f(epsilon1),
    }
}

/// Newton's method on the derivative of `f`, using central finite differences.
/// Returns `None` if it leaves `[lo, hi]` or fails to converge.
fn newton_minimize_1d<F: Fn(f64) -> f64>(f: F, start: f64, lo: f64, hi: f64) -> Option<f64> {
    let h = (hi - lo) * 1e-6;
    let grad = |x: f64| (f(x + h) - f(x - h)) / (2.0 * h);
    let hess = |x: f64| (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);

    let mut x = start;
    for _ in 0..100 {
        let g = grad(x);
        let second = hess(x);
        if !g.is_finite() || !second.is_finite() || second.abs() < 1e-18 {
            return None;
        }
        let step = g / second;
        let next = x - step;
        if !next.is_finite() || next <= lo || next >= hi {
            return None;
        }
        if (next - x).abs() < 1e-12 {
            // Converged; require the point to be a local minimum.
            return if hess(next) >= 0.0 { Some(next) } else { None };
        }
        x = next;
    }
    Some(x)
}

/// Golden-section search for the minimum of a unimodal function on `[lo, hi]`.
fn golden_section_minimize<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = hi - (hi - lo) * INV_PHI;
    let mut d = lo + (hi - lo) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (hi - lo).abs() > tol {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - (hi - lo) * INV_PHI;
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + (hi - lo) * INV_PHI;
            fd = f(d);
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::single_source_l2;

    #[test]
    fn optimal_alpha_closed_form_is_a_stationary_point() {
        let (du, dw, e1, e2) = (5.0, 100.0, 0.8, 1.2);
        let alpha = optimal_alpha(du, dw, e1, e2);
        assert!((0.0..=1.0).contains(&alpha));
        // Perturbing alpha in either direction must not decrease the loss.
        let base = double_source_l2(du, dw, alpha, e1, e2);
        for delta in [-1e-4, 1e-4] {
            let perturbed = double_source_l2(du, dw, (alpha + delta).clamp(0.0, 1.0), e1, e2);
            assert!(perturbed >= base - 1e-12);
        }
    }

    #[test]
    fn optimal_alpha_favours_low_degree_vertex() {
        // When d_u << d_w the u-side estimator is more reliable, so α > 0.5.
        let alpha = optimal_alpha(2.0, 500.0, 1.0, 1.0);
        assert!(alpha > 0.5, "alpha {alpha}");
        // Symmetric case gives exactly 0.5.
        let alpha = optimal_alpha(10.0, 10.0, 1.0, 1.0);
        assert!((alpha - 0.5).abs() < 1e-12);
        // Degenerate degrees do not panic.
        let alpha = optimal_alpha(0.0, 0.0, 1.0, 1.0);
        assert!((0.0..=1.0).contains(&alpha));
    }

    #[test]
    fn optimized_allocation_is_feasible() {
        for (du, dw) in [(5.0, 10.0), (5.0, 100.0), (300.0, 2.0), (1.0, 1.0)] {
            for eps in [1.0, 2.0, 3.0] {
                let opt = optimize_double_source(du, dw, eps);
                assert!(opt.epsilon1 > 0.0 && opt.epsilon1 < eps);
                assert!(opt.epsilon2 > 0.0 && opt.epsilon2 < eps);
                assert!((opt.epsilon1 + opt.epsilon2 - eps).abs() < 1e-9);
                assert!((0.0..=1.0).contains(&opt.alpha));
                assert!(opt.loss.is_finite() && opt.loss > 0.0);
            }
        }
    }

    #[test]
    fn optimum_beats_both_single_sources() {
        // Theorem 9: min L2(f*) <= min(L2(f_u), L2(f_w)) for any fixed split;
        // with the split also optimised it is at most the even-split SS loss.
        for (du, dw) in [(5.0, 10.0), (5.0, 100.0), (50.0, 60.0), (1000.0, 3.0)] {
            let eps = 2.0;
            let opt = optimize_double_source(du, dw, eps);
            let even_ss_u = single_source_l2(du, eps / 2.0, eps / 2.0);
            let even_ss_w = single_source_l2(dw, eps / 2.0, eps / 2.0);
            assert!(
                opt.loss <= even_ss_u.min(even_ss_w) + 1e-9,
                "du={du} dw={dw}: {} vs {}",
                opt.loss,
                even_ss_u.min(even_ss_w)
            );
        }
    }

    #[test]
    fn optimum_beats_grid_search() {
        // The returned loss should be within a hair of a dense grid search.
        let (du, dw, eps) = (5.0, 100.0, 2.0);
        let opt = optimize_double_source(du, dw, eps);
        let mut best_grid = f64::INFINITY;
        for i in 1..400 {
            let e1 = eps * i as f64 / 400.0;
            let e2 = eps - e1;
            for j in 0..=100 {
                let alpha = j as f64 / 100.0;
                best_grid = best_grid.min(double_source_l2(du, dw, alpha, e1, e2));
            }
        }
        assert!(
            opt.loss <= best_grid * 1.001,
            "optimizer {} vs grid {best_grid}",
            opt.loss
        );
    }

    #[test]
    fn large_degrees_shift_budget_towards_rr() {
        // Paper: "when the incoming query vertices have large degrees,
        // MultiR-DS tends to devote more privacy budget to noisy graph
        // construction" (ε₁).
        let small = optimize_double_source(5.0, 5.0, 2.0);
        let large = optimize_double_source(500.0, 500.0, 2.0);
        assert!(
            large.epsilon1 > small.epsilon1,
            "large-degree ε₁ {} should exceed small-degree ε₁ {}",
            large.epsilon1,
            small.epsilon1
        );
    }

    #[test]
    fn single_source_optimizer_matches_alpha_one_special_case() {
        let du = 200.0;
        let eps = 2.0;
        let ss = optimize_single_source(du, eps);
        assert_eq!(ss.alpha, 1.0);
        // Must be no worse than the even split.
        assert!(ss.loss <= single_source_l2(du, 1.0, 1.0) + 1e-9);
        // And feasible.
        assert!(ss.epsilon1 > 0.0 && ss.epsilon2 > 0.0);
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let min = golden_section_minimize(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0, 1e-9);
        assert!((min - 3.0).abs() < 1e-6);
    }

    #[test]
    fn newton_finds_parabola_minimum() {
        let x = newton_minimize_1d(|x| (x - 3.0) * (x - 3.0) + 1.0, 5.0, 0.0, 10.0).unwrap();
        assert!((x - 3.0).abs() < 1e-6);
        // Newton refuses a maximum.
        assert!(newton_minimize_1d(|x| -(x - 3.0) * (x - 3.0), 3.0001, 0.0, 10.0).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let opt = optimize_double_source(5.0, 10.0, 2.0);
        let json = serde_json::to_string(&opt).unwrap();
        let back: OptimizedAllocation = serde_json::from_str(&json).unwrap();
        // JSON float round-tripping may differ in the last ulp.
        assert!((opt.epsilon1 - back.epsilon1).abs() < 1e-12);
        assert!((opt.epsilon2 - back.epsilon2).abs() < 1e-12);
        assert!((opt.alpha - back.alpha).abs() < 1e-12);
        assert!((opt.loss - back.loss).abs() < 1e-9);
    }
}

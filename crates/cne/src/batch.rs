//! Batch estimation: one target vertex against many candidates.
//!
//! Applications such as "find the most similar users to `u`" need
//! `C2(u, w₁), …, C2(u, w_k)` for many candidates. Running MultiR-SS
//! independently per candidate would multiply the privacy cost of `u`'s data
//! by `k`. The batch protocol avoids that:
//!
//! * **Round 1** — the target `u` applies randomized response to its neighbor
//!   list once with budget `ε₁` and uploads the noisy edges. This is the only
//!   release that touches `u`'s data, so `u` spends exactly `ε₁` regardless of
//!   how many candidates there are.
//! * **Round 2** — every candidate `w_i` downloads `u`'s noisy edges, builds
//!   the single-source estimator `f̃_{w_i}` from its *own* neighborhood, adds
//!   Laplace noise with budget `ε₂`, and uploads one scalar. The candidates'
//!   neighbor lists are disjoint datasets, so these releases compose in
//!   parallel: each vertex's total spend is `ε₁ + ε₂ = ε`.
//!
//! The result is `k` unbiased estimates for the price (in privacy) of one.

use crate::error::{CneError, Result};
use crate::estimate::AlgorithmKind;
use crate::protocol::{randomized_response_round, record_download, record_scalar_upload};
use crate::single_source::{single_source_laplace, single_source_value};
use bigraph::{common_neighbors, BipartiteGraph, Layer, VertexId};
use ldp::budget::{BudgetAccountant, Composition, PrivacyBudget};
use ldp::transcript::Transcript;
use serde::{Deserialize, Serialize};

/// One candidate's estimate in a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchEstimate {
    /// The candidate vertex.
    pub candidate: VertexId,
    /// The unbiased estimate of `C2(target, candidate)`.
    pub estimate: f64,
}

/// The outcome of a batch estimation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// The target vertex all estimates are relative to.
    pub target: VertexId,
    /// The layer the target and candidates live on.
    pub layer: Layer,
    /// Per-candidate estimates, in the order the candidates were given.
    pub estimates: Vec<BatchEstimate>,
    /// The total privacy budget each participating vertex spent.
    pub epsilon: f64,
    /// Privacy accounting for the run (per-vertex view).
    pub budget: BudgetAccountant,
    /// Byte-accurate transcript of all exchanged messages.
    pub transcript: Transcript,
}

impl BatchReport {
    /// The candidates ranked by decreasing estimate (ties keep input order).
    #[must_use]
    pub fn ranked(&self) -> Vec<BatchEstimate> {
        let mut sorted = self.estimates.clone();
        sorted.sort_by(|a, b| b.estimate.partial_cmp(&a.estimate).expect("finite estimates"));
        sorted
    }

    /// Total communication in bytes.
    #[must_use]
    pub fn communication_bytes(&self) -> usize {
        self.transcript.total_bytes()
    }
}

/// The batch single-source estimator (see the module docs for the protocol).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSingleSource {
    /// Fraction of the budget spent on the target's randomized response.
    pub epsilon1_fraction: f64,
}

impl Default for BatchSingleSource {
    fn default() -> Self {
        Self {
            epsilon1_fraction: 0.5,
        }
    }
}

impl BatchSingleSource {
    /// The algorithm family this protocol belongs to (it generalises MultiR-SS).
    #[must_use]
    pub fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::MultiRSS
    }

    /// Runs the batch protocol for `target` against `candidates` on `layer`.
    ///
    /// # Errors
    ///
    /// * invalid budget or fraction,
    /// * unknown target/candidate vertices,
    /// * a candidate equal to the target,
    /// * an empty candidate list.
    pub fn estimate_batch(
        &self,
        g: &BipartiteGraph,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<BatchReport> {
        if candidates.is_empty() {
            return Err(CneError::InvalidParameter {
                name: "candidates",
                reason: "the candidate list must not be empty".into(),
            });
        }
        for &w in candidates {
            common_neighbors::check_query_pair(g, layer, target, w)?;
        }
        let total = PrivacyBudget::new(epsilon)?;
        let (eps1, eps2) = total.split_fraction(self.epsilon1_fraction)?;
        let mut budget = BudgetAccountant::new(total);
        let mut transcript = Transcript::new();

        // Round 1: the target perturbs and uploads its neighbor list once.
        let round1 = randomized_response_round(
            g,
            layer,
            &[target],
            eps1,
            1,
            &mut budget,
            &mut transcript,
            rng,
        )?;
        let p = round1.flip_probability;
        let noisy_target = round1.noisy.into_iter().next().expect("one list requested");

        // Round 2: every candidate downloads the noisy list, builds its
        // single-source estimator, and releases it with Laplace noise. The
        // first release is charged sequentially; the remaining candidates'
        // releases cover disjoint neighbor lists and compose in parallel.
        let laplace = single_source_laplace(p, eps2)?;
        let mut estimates = Vec::with_capacity(candidates.len());
        for (i, &w) in candidates.iter().enumerate() {
            record_download(&mut transcript, 2, "noisy-edges(target) -> candidate", &noisy_target);
            let composition = if i == 0 {
                Composition::Sequential
            } else {
                Composition::Parallel
            };
            budget.charge(format!("round2:laplace(f_w{i})"), eps2, composition)?;
            let raw = single_source_value(g, layer, w, &noisy_target, p);
            let noisy = laplace.perturb(raw, rng);
            record_scalar_upload(&mut transcript, 2, "estimator(f_w)");
            estimates.push(BatchEstimate {
                candidate: w,
                estimate: noisy,
            });
        }

        Ok(BatchReport {
            target,
            layer,
            estimates,
            epsilon,
            budget,
            transcript,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Target u0 shares 8, 4, and 0 items with candidates u1, u2, u3.
    fn graph() -> BipartiteGraph {
        let edges = (0..10u32)
            .map(|v| (0u32, v))
            .chain((2..12u32).map(|v| (1u32, v)))
            .chain((6..16u32).map(|v| (2u32, v)))
            .chain((50..60u32).map(|v| (3u32, v)));
        BipartiteGraph::from_edges(4, 400, edges).unwrap()
    }

    #[test]
    fn batch_estimates_are_unbiased_per_candidate() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(3);
        let runs = 400;
        let mut sums = [0.0f64; 3];
        for _ in 0..runs {
            let report = algo
                .estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
                .unwrap();
            for (i, est) in report.estimates.iter().enumerate() {
                sums[i] += est.estimate;
            }
        }
        let truths = [8.0, 4.0, 0.0];
        for i in 0..3 {
            let mean = sums[i] / runs as f64;
            assert!(
                (mean - truths[i]).abs() < 0.6,
                "candidate {i}: mean {mean} vs truth {}",
                truths[i]
            );
        }
    }

    #[test]
    fn per_vertex_budget_is_epsilon_not_k_epsilon() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(5);
        let report = algo
            .estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
            .unwrap();
        // One sequential RR charge + one sequential Laplace charge; the other
        // candidates' Laplace charges are parallel, so total consumption is ε.
        assert!((report.budget.consumed() - 2.0).abs() < 1e-9);
        assert_eq!(report.estimates.len(), 3);
    }

    #[test]
    fn ranking_orders_by_estimate() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(9);
        // Use a generous budget so the ranking matches the ground truth.
        let report = algo
            .estimate_batch(&g, Layer::Upper, 0, &[3, 2, 1], 8.0, &mut rng)
            .unwrap();
        let ranked = report.ranked();
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].estimate >= ranked[1].estimate);
        assert!(ranked[1].estimate >= ranked[2].estimate);
        assert_eq!(ranked[0].candidate, 1, "u1 shares the most items with u0");
    }

    #[test]
    fn transcript_scales_with_candidates_but_uploads_target_once() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(7);
        let small = algo
            .estimate_batch(&g, Layer::Upper, 0, &[1], 2.0, &mut rng)
            .unwrap();
        let large = algo
            .estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
            .unwrap();
        // Exactly one upload of the target's noisy edges in both runs.
        let uploads = |r: &BatchReport| {
            r.transcript
                .messages()
                .iter()
                .filter(|m| m.label.starts_with("noisy-edges(v"))
                .count()
        };
        assert_eq!(uploads(&small), 1);
        assert_eq!(uploads(&large), 1);
        assert!(large.communication_bytes() > small.communication_bytes());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[], 2.0, &mut rng)
            .is_err());
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[0], 2.0, &mut rng)
            .is_err());
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[99], 2.0, &mut rng)
            .is_err());
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[1], 0.0, &mut rng)
            .is_err());
    }

    #[test]
    fn serde_round_trip() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(21);
        let report = BatchSingleSource::default()
            .estimate_batch(&g, Layer::Upper, 0, &[1, 2], 2.0, &mut rng)
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.estimates.len(), 2);
        assert_eq!(back.target, 0);
    }
}

//! Batch estimation: one target vertex against many candidates.
//!
//! Applications such as "find the most similar users to `u`" need
//! `C2(u, w₁), …, C2(u, w_k)` for many candidates. Running MultiR-SS
//! independently per candidate would multiply the privacy cost of `u`'s data
//! by `k`. The batch protocol avoids that:
//!
//! * **Round 1** — the target `u` applies randomized response to its neighbor
//!   list once with budget `ε₁` and uploads the noisy edges. This is the only
//!   release that touches `u`'s data, so `u` spends exactly `ε₁` regardless of
//!   how many candidates there are.
//! * **Round 2** — every candidate `w_i` downloads `u`'s noisy edges, builds
//!   the single-source estimator `f̃_{w_i}` from its *own* neighborhood, adds
//!   Laplace noise with budget `ε₂`, and uploads one scalar. The candidates'
//!   neighbor lists are disjoint datasets, so these releases compose in
//!   parallel: each vertex's total spend is `ε₁ + ε₂ = ε`.
//!
//! The result is `k` unbiased estimates for the price (in privacy) of one.
//!
//! # Parallel batch engine
//!
//! Round 2 is embarrassingly parallel: every candidate's estimator reads the
//! same packed noisy target row and its own (immutable) adjacency. Round 1
//! produces that row **directly in bit-packed form**
//! ([`ldp::noisy_graph::NoisyNeighborsPacked`] — RNG draws become words,
//! with no intermediate id list or merge pass), the engine fans the
//! candidates out across all cores with `rayon`, and gives every candidate
//! its own RNG stream derived as `seed + vertex id` (see
//! [`user_stream_seed`]). Streams depend only on the draw of one base seed
//! and the candidate's vertex id — never on thread scheduling — so a
//! seeded run produces **byte-identical** results at any core count.
//!
//! The per-candidate loop is **allocation-free after warmup**: accounting
//! runs in the lean mode (interned labels, fixed-size counters — see
//! [`crate::engine`]), and any per-candidate packing goes through the
//! worker's scratch arena ([`crate::engine::with_shard_scratch`]). Use
//! [`BatchSingleSource::estimate_batch_detailed`] to retain the full
//! message log and budget ledger instead.

use crate::engine::{with_shard_scratch, ProtocolEnv, RoundContext};
use crate::error::{CneError, Result};
use crate::estimate::AlgorithmKind;
use crate::protocol::randomized_response_round_packed;
use crate::single_source::{
    single_source_laplace, single_source_value_multi, single_source_value_scratch,
};
use bigraph::bitset::PackedSet;
use bigraph::{common_neighbors, BipartiteGraph, Layer, VertexId};
use ldp::budget::{BudgetAccountant, Composition, PrivacyBudget};
use ldp::laplace::{sample_laplace_each, LaplaceMechanism};
use ldp::noisy_graph::NoisyNeighborsPacked;
use ldp::transcript::{Label, Transcript};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Derives the deterministic RNG stream seed for one participating user.
///
/// The contract (documented in ROADMAP.md) is `stream = mix(seed, vertex id)`
/// with a SplitMix64-style finalizer: streams are decorrelated across users,
/// reproducible for a fixed `(seed, vertex)` pair, and independent of both
/// thread scheduling and the order users are processed in.
#[must_use]
pub fn user_stream_seed(seed: u64, vertex: u64) -> u64 {
    let mut z = seed ^ vertex.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One candidate's estimate in a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchEstimate {
    /// The candidate vertex.
    pub candidate: VertexId,
    /// The unbiased estimate of `C2(target, candidate)`.
    pub estimate: f64,
}

/// The outcome of a batch estimation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// The target vertex all estimates are relative to.
    pub target: VertexId,
    /// The layer the target and candidates live on.
    pub layer: Layer,
    /// Per-candidate estimates, in the order the candidates were given.
    pub estimates: Vec<BatchEstimate>,
    /// The total privacy budget each participating vertex spent.
    pub epsilon: f64,
    /// Privacy accounting for the run (per-vertex view).
    pub budget: BudgetAccountant,
    /// Byte-accurate transcript of all exchanged messages.
    pub transcript: Transcript,
}

impl BatchReport {
    /// The candidates ranked by decreasing estimate (ties keep input order).
    ///
    /// A NaN estimate (possible only from pathological downstream
    /// post-processing — the protocol itself never produces one) sorts
    /// *after* every real value ([`crate::estimate::nan_last_desc`]) instead
    /// of panicking the ranking or surfacing as the winner.
    #[must_use]
    pub fn ranked(&self) -> Vec<BatchEstimate> {
        let mut sorted = self.estimates.clone();
        sorted.sort_by(|a, b| crate::estimate::nan_last_desc(a.estimate, b.estimate));
        sorted
    }

    /// Total communication in bytes.
    #[must_use]
    pub fn communication_bytes(&self) -> usize {
        self.transcript.total_bytes()
    }
}

/// The batch single-source estimator (see the module docs for the protocol).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSingleSource {
    /// Fraction of the budget spent on the target's randomized response.
    pub epsilon1_fraction: f64,
}

impl Default for BatchSingleSource {
    fn default() -> Self {
        Self {
            epsilon1_fraction: 0.5,
        }
    }
}

impl BatchSingleSource {
    /// The algorithm family this protocol belongs to (it generalises MultiR-SS).
    #[must_use]
    pub fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::MultiRSS
    }

    /// Runs the batch protocol for `target` against `candidates` on `layer`.
    ///
    /// # Errors
    ///
    /// * invalid budget or fraction,
    /// * unknown target/candidate vertices,
    /// * a candidate equal to the target,
    /// * duplicate candidates (each user may release once per batch),
    /// * an empty candidate list.
    pub fn estimate_batch(
        &self,
        g: &BipartiteGraph,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<BatchReport> {
        self.estimate_batch_in(
            ProtocolEnv::uncached(g),
            layer,
            target,
            candidates,
            epsilon,
            rng,
        )
    }

    /// [`BatchSingleSource::estimate_batch`] in **detailed** accounting
    /// mode: the report retains the per-message transcript log and the
    /// per-charge budget ledger. Estimates and every aggregate are
    /// byte-identical to the lean run on the same seed.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn estimate_batch_detailed(
        &self,
        g: &BipartiteGraph,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<BatchReport> {
        self.estimate_batch_impl(
            ProtocolEnv::uncached(g),
            layer,
            target,
            candidates,
            epsilon,
            rng,
            true,
        )
    }

    /// [`BatchSingleSource::estimate_batch`] inside a protocol environment —
    /// the entry point [`crate::engine::EstimationEngine`] routes through so
    /// candidate adjacencies come from its warm
    /// [`crate::engine::AdjacencyStore`]. Byte-identical to the uncached
    /// path for the same seed.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn estimate_batch_in(
        &self,
        env: ProtocolEnv<'_>,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<BatchReport> {
        self.estimate_batch_impl(env, layer, target, candidates, epsilon, rng, false)
    }

    /// [`BatchSingleSource::estimate_batch_in`] with detailed accounting
    /// (see [`BatchSingleSource::estimate_batch_detailed`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn estimate_batch_in_detailed(
        &self,
        env: ProtocolEnv<'_>,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<BatchReport> {
        self.estimate_batch_impl(env, layer, target, candidates, epsilon, rng, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn estimate_batch_impl(
        &self,
        env: ProtocolEnv<'_>,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
        detailed: bool,
    ) -> Result<BatchReport> {
        validate_batch_query(env.graph, layer, target, candidates)?;
        let mut ctx = if detailed {
            RoundContext::begin_detailed(epsilon, rng)?
        } else {
            RoundContext::begin(epsilon, rng)?
        };
        let round1 = self.round1_with_ctx(env, layer, target, &mut ctx)?;

        // Round 2: every candidate downloads the noisy list, builds its
        // single-source estimator, and releases it with Laplace noise.
        let estimates = batch_round2(env, layer, candidates, &round1)?;

        // Accounting and the message transcript are sequential bookkeeping,
        // recorded exactly as the wire protocol would observe them — pure
        // counter arithmetic in the default lean mode.
        replay_round2_accounting(
            &mut ctx,
            &round1.noisy_target,
            round1.eps2,
            candidates.len(),
        )?;

        let (budget, transcript) = ctx.finish();
        Ok(BatchReport {
            target,
            layer,
            estimates,
            epsilon,
            budget,
            transcript,
        })
    }

    /// The split-out first phase of [`BatchSingleSource::estimate_batch_in`]:
    /// validates the full query, runs the target's randomized-response
    /// round, and fixes the per-candidate RNG stream base — everything
    /// round 2 depends on, bundled as a [`BatchRound1`].
    ///
    /// This is the phase a sharded deployment runs **once, at the worker
    /// that owns the target's adjacency**: the artifacts it returns are
    /// placement-free (a noisy row over the global opposite layer, a flip
    /// probability, a stream base), so round 2 can be evaluated for any
    /// candidate subset, anywhere, and the results concatenated — see
    /// [`batch_round2`] and [`BatchSingleSource::assemble_report`]. Running
    /// `round1_in` + `batch_round2` + `assemble_report` over any partition
    /// of `candidates` is byte-identical to
    /// [`BatchSingleSource::estimate_batch_in`] on the same `rng`, because
    /// all three share their validation, estimation, and accounting code
    /// with it.
    ///
    /// The run-scoped accounting (budget charge for the RR round) is *not*
    /// retained here — [`BatchSingleSource::assemble_report`] replays it;
    /// the charge is still validated against `epsilon` before any draw.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn round1_in(
        &self,
        env: ProtocolEnv<'_>,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<BatchRound1> {
        validate_batch_query(env.graph, layer, target, candidates)?;
        let mut ctx = RoundContext::begin(epsilon, rng)?;
        self.round1_with_ctx(env, layer, target, &mut ctx)
    }

    /// Round 1 proper, inside an already-begun context: budget split, the
    /// target's packed randomized-response round, and the stream-base draw
    /// — in exactly this order, so the `rng` consumption matches the
    /// monolithic path draw for draw.
    fn round1_with_ctx(
        &self,
        env: ProtocolEnv<'_>,
        layer: Layer,
        target: VertexId,
        ctx: &mut RoundContext<'_>,
    ) -> Result<BatchRound1> {
        let epsilon = ctx.total().value();
        let (eps1, eps2) = ctx.total().split_fraction(self.epsilon1_fraction)?;

        // Round 1: the target perturbs and uploads its neighbor list once —
        // directly in packed form (RNG → words, no id list, no merge pass;
        // the engine's cached true-adjacency bitmap is OR-ed in word-wise
        // when the environment carries a warm store).
        let round1 = randomized_response_round_packed(env, layer, &[target], eps1, 1, ctx)?;
        let flip_probability = round1.flip_probability;
        let noisy_target = round1.noisy.into_iter().next().expect("one list requested");
        let base_seed = ctx.next_stream_base();
        Ok(BatchRound1 {
            epsilon,
            flip_probability,
            eps2,
            base_seed,
            noisy_target,
        })
    }

    /// Rebuilds the full [`BatchReport`] from round-1 artifacts and the
    /// (re)assembled per-candidate estimates — the curator-side closing
    /// step of a sharded run.
    ///
    /// `estimates` must be the concatenation, **in the original candidate
    /// order**, of [`batch_round2`] outputs over a partition of the
    /// candidate list. The budget ledger and transcript are replayed
    /// through the same accounting helpers the monolithic path records
    /// through, so the report is byte-identical (estimates, budget,
    /// transcript — lean mode) to [`BatchSingleSource::estimate_batch_in`]
    /// on the equivalent unsharded engine.
    ///
    /// # Errors
    ///
    /// Invalid `epsilon`/fraction, or an empty `estimates` list (a batch
    /// always has at least one candidate).
    pub fn assemble_report(
        &self,
        layer: Layer,
        target: VertexId,
        round1: &BatchRound1,
        estimates: Vec<BatchEstimate>,
    ) -> Result<BatchReport> {
        if estimates.is_empty() {
            return Err(CneError::InvalidParameter {
                name: "estimates",
                reason: "the assembled estimate list must not be empty".into(),
            });
        }
        // The replay never draws: the rng is only a constructor argument.
        let mut unused_rng = StdRng::seed_from_u64(0);
        let mut ctx = RoundContext::begin(round1.epsilon, &mut unused_rng)?;
        let (eps1, eps2) = ctx.total().split_fraction(self.epsilon1_fraction)?;
        replay_round1_accounting(&mut ctx, eps1, &round1.noisy_target)?;
        replay_round2_accounting(&mut ctx, &round1.noisy_target, eps2, estimates.len())?;
        let (budget, transcript) = ctx.finish();
        Ok(BatchReport {
            target,
            layer,
            estimates,
            epsilon: round1.epsilon,
            budget,
            transcript,
        })
    }
}

/// The placement-free artifacts of a batch run's round 1 (see
/// [`BatchSingleSource::round1_in`]): everything a round-2 evaluation
/// depends on, and nothing tied to where it runs. Ship these across a
/// process boundary and any worker holding a candidate's true adjacency
/// can produce that candidate's exact estimate.
#[derive(Debug, Clone)]
pub struct BatchRound1 {
    /// The total per-vertex budget `ε` of the run.
    pub epsilon: f64,
    /// The randomized-response flip probability `1 / (1 + e^{ε₁})`.
    pub flip_probability: f64,
    /// The round-2 Laplace budget `ε₂`.
    pub eps2: PrivacyBudget,
    /// Base seed for the per-candidate streams: candidate `w` perturbs on
    /// `mix(base_seed, w)` ([`user_stream_seed`]), independent of every
    /// other candidate.
    pub base_seed: u64,
    /// The target's packed noisy row over the (global) opposite layer.
    pub noisy_target: NoisyNeighborsPacked,
}

/// The batch protocol's query validation, exactly as
/// [`BatchSingleSource::estimate_batch`] applies it: non-empty candidate
/// list, every pair `(target, wᵢ)` valid on `layer`, candidates distinct.
/// Layer sizes are the only graph state consulted, so any shard holding
/// the global layer sizes validates identically to the full graph.
///
/// # Errors
///
/// The first failing check, in input order — the same first error the
/// monolithic path returns.
pub fn validate_batch_query(
    g: &BipartiteGraph,
    layer: Layer,
    target: VertexId,
    candidates: &[VertexId],
) -> Result<()> {
    if candidates.is_empty() {
        return Err(CneError::InvalidParameter {
            name: "candidates",
            reason: "the candidate list must not be empty".into(),
        });
    }
    for &w in candidates {
        common_neighbors::check_query_pair(g, layer, target, w)?;
    }
    // Duplicates are rejected rather than silently re-estimated: the
    // round-2 releases compose in parallel only because the candidates'
    // neighbor lists are disjoint datasets, which a repeated vertex
    // violates — and per-user streams (seed + vertex id) would hand the
    // duplicate the identical Laplace draw, not an independent one.
    // (One sorted copy per call — per-call setup, not per-candidate.)
    let mut seen = candidates.to_vec();
    seen.sort_unstable();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return Err(CneError::InvalidParameter {
            name: "candidates",
            reason: "candidate vertices must be distinct".into(),
        });
    }
    Ok(())
}

/// Round 2 of the batch protocol for a **slice** of the candidate list:
/// each candidate intersects its own true adjacency with the shipped noisy
/// row and releases its estimator under Laplace noise drawn from its keyed
/// stream. Estimates depend only on `round1` and the candidate's adjacency
/// — never on which other candidates share the slice — so evaluating a
/// partition of the candidate list slice-by-slice (on different workers,
/// in any order) and concatenating preserves byte-identity with the
/// monolithic run.
///
/// Compute is fanned out across cores: the target's noisy row is already
/// bit-packed, dense candidates reuse the environment's cached bitmaps (or
/// each worker's scratch word buffer when there is no cache), and each
/// candidate perturbs on its own `mix(base_seed, w)` stream, so the output
/// is identical at any thread count — and the loop performs zero heap
/// allocations per candidate after warmup.
///
/// # Errors
///
/// An invalid Laplace configuration (degenerate flip probability) — the
/// artifacts of a successful [`BatchSingleSource::round1_in`] never
/// produce one.
pub fn batch_round2(
    env: ProtocolEnv<'_>,
    layer: Layer,
    candidates: &[VertexId],
    round1: &BatchRound1,
) -> Result<Vec<BatchEstimate>> {
    let laplace = single_source_laplace(round1.flip_probability, round1.eps2)?;
    let packed_target = round1.noisy_target.set();
    let p = round1.flip_probability;
    let base_seed = round1.base_seed;
    Ok(candidates
        .par_iter()
        .map(|&w| {
            let mut stream = RoundContext::user_rng(base_seed, w);
            let raw = with_shard_scratch(|scratch| {
                single_source_value_scratch(env, layer, w, packed_target, p, scratch)
            });
            BatchEstimate {
                candidate: w,
                estimate: laplace.perturb(raw, &mut stream),
            }
        })
        .collect())
}

/// Replays round 1's accounting — one sequential `ε₁` charge, one noisy-row
/// upload record — exactly as `rr_round_scaffold` records it for a
/// single-vertex round. Generation itself touches only the RNG, never the
/// ledger, so charge-then-record reproduces the monolithic context state
/// bit for bit.
fn replay_round1_accounting(
    ctx: &mut RoundContext<'_>,
    eps1: PrivacyBudget,
    noisy_target: &NoisyNeighborsPacked,
) -> Result<()> {
    ctx.charge(
        Label::Indexed("round", 1, ":rr"),
        eps1,
        Composition::Sequential,
    )?;
    ctx.record(
        1,
        ldp::transcript::Direction::Upload,
        Label::Indexed("noisy-edges(v", 0, ")"),
        noisy_target.message_bytes(),
    );
    Ok(())
}

/// The shared round-2 bookkeeping of every batch path (monolithic,
/// fused multi-target, and the cluster coordinator's reassembly): per
/// candidate, one noisy-row download record, one `ε₂` Laplace charge —
/// sequential for the first candidate, parallel composition for the rest
/// (disjoint neighbor lists) — and one scalar estimator upload.
fn replay_round2_accounting(
    ctx: &mut RoundContext<'_>,
    noisy_target: &NoisyNeighborsPacked,
    eps2: PrivacyBudget,
    k: usize,
) -> Result<()> {
    for i in 0..k {
        ctx.record_download_packed(2, "noisy-edges(target) -> candidate", noisy_target);
        let composition = if i == 0 {
            Composition::Sequential
        } else {
            Composition::Parallel
        };
        ctx.charge(
            Label::Indexed("round2:laplace(f_w", i as u32, ")"),
            eps2,
            composition,
        )?;
        ctx.record_scalar_upload(2, "estimator(f_w)");
    }
    Ok(())
}

/// Candidates processed per chunk of the fused multi-target round 2: large
/// enough to amortize one batched stream-seed pass and one keyed Laplace
/// pass per target, small enough that a chunk's staging stays L1-resident.
const ROUND2_CHUNK: usize = 32;

/// Per-target round-1 state staged for the fused candidate-major round 2.
struct TargetShard {
    target: VertexId,
    flip_probability: f64,
    laplace: LaplaceMechanism,
    base_seed: u64,
    eps2: PrivacyBudget,
    noisy: NoisyNeighborsPacked,
}

impl BatchSingleSource {
    /// Sharded batch estimation across many targets with a **fused,
    /// candidate-major round 2**, byte-identical to running
    /// [`BatchSingleSource::estimate_batch_in`] per target on the stream
    /// `RoundContext::user_rng(seed, t)` — the contract
    /// [`crate::engine::EstimationEngine::estimate_many_targets`] documents.
    ///
    /// The per-target reference walks the candidate list once per target,
    /// re-streaming every candidate's packed adjacency (~`universe/8`
    /// bytes) from memory `T` times. This path inverts the loop nest:
    /// round 1 runs per target exactly as before (in target order, on the
    /// target's own stream), then one parallel pass walks the candidates in
    /// fixed chunks and intersects each candidate's adjacency — loaded
    /// once, hot in cache — against **all** `T` noisy target rows. Per
    /// chunk and target, the `mix(base, candidate)` stream seeds are
    /// precomputed in a block, the generator states are batch-initialized
    /// ([`StdRng::seed_batch_from_u64`]), and one keyed Laplace draw per
    /// stream is applied in bulk ([`sample_laplace_each`]) — amortizing
    /// per-user RNG setup that the reference pays per candidate.
    ///
    /// Bit-identity holds because every `(target, candidate)` estimate
    /// depends only on its own independently keyed stream and on inputs
    /// (`noisy row`, `flip probability`, Laplace scale) fixed in round 1;
    /// neither loop order nor chunking touches any draw. Accounting replays
    /// sequentially per target, in the reference order.
    ///
    /// # Errors
    ///
    /// Per-shard validation and protocol errors, reported for the earliest
    /// failing target — the same first error the per-target reference
    /// returns.
    pub(crate) fn estimate_many_in(
        &self,
        env: ProtocolEnv<'_>,
        layer: Layer,
        targets: &[VertexId],
        candidates: &[VertexId],
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<BatchReport>> {
        let g = env.graph;
        // Round 1 + validation per target, in target order (so the first
        // error matches the sequential reference). Each target's context
        // wraps its own `mix(seed, target)` stream.
        let mut rngs: Vec<StdRng> = targets
            .iter()
            .map(|&t| RoundContext::user_rng(seed, t))
            .collect();
        let mut shards: Vec<TargetShard> = Vec::with_capacity(targets.len());
        let mut ctxs: Vec<RoundContext<'_>> = Vec::with_capacity(targets.len());
        for (&target, rng) in targets.iter().zip(rngs.iter_mut()) {
            // The shard's candidate list is `candidates` minus the target;
            // validate exactly as `estimate_batch_impl` validates it.
            if !candidates.iter().any(|&w| w != target) {
                return Err(CneError::InvalidParameter {
                    name: "candidates",
                    reason: "the candidate list must not be empty".into(),
                });
            }
            for &w in candidates {
                if w != target {
                    common_neighbors::check_query_pair(g, layer, target, w)?;
                }
            }
            let mut seen: Vec<VertexId> = candidates
                .iter()
                .copied()
                .filter(|&w| w != target)
                .collect();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(CneError::InvalidParameter {
                    name: "candidates",
                    reason: "candidate vertices must be distinct".into(),
                });
            }
            let mut ctx = RoundContext::begin(epsilon, rng)?;
            let (eps1, eps2) = ctx.total().split_fraction(self.epsilon1_fraction)?;
            let round1 =
                randomized_response_round_packed(env, layer, &[target], eps1, 1, &mut ctx)?;
            let flip_probability = round1.flip_probability;
            let noisy = round1.noisy.into_iter().next().expect("one list requested");
            let laplace = single_source_laplace(flip_probability, eps2)?;
            let base_seed = ctx.next_stream_base();
            shards.push(TargetShard {
                target,
                flip_probability,
                laplace,
                base_seed,
                eps2,
                noisy,
            });
            ctxs.push(ctx);
        }

        // Fused round 2: one parallel pass over candidate chunks. Chunk
        // results are dense `targets × chunk` value blocks; slots where the
        // candidate equals the target are dead weight dropped at assembly
        // (their streams are independent of every live one).
        let chunk_count = candidates.len().div_ceil(ROUND2_CHUNK);
        let shards_ref = &shards;
        let rows: Vec<&PackedSet> = shards.iter().map(|s| s.noisy.set()).collect();
        let flips: Vec<f64> = shards.iter().map(|s| s.flip_probability).collect();
        let (rows_ref, flips_ref) = (&rows, &flips);
        let chunk_values: Vec<Vec<f64>> = (0..chunk_count)
            .into_par_iter()
            .map(|ci| {
                let start = ci * ROUND2_CHUNK;
                let chunk = &candidates[start..candidates.len().min(start + ROUND2_CHUNK)];
                let mut values = vec![0.0f64; chunk.len() * shards_ref.len()];
                with_shard_scratch(|scratch| {
                    // Candidate-major raw pass: each candidate's adjacency
                    // is resolved once and counted against target rows in
                    // groups of four while it is cache-hot (the multi-row
                    // kernel tiles the candidate bitmap through L1).
                    for (i, &w) in chunk.iter().enumerate() {
                        let mut counts = [0u64; 4];
                        let mut vals = [0.0f64; 4];
                        for (g, (rows4, flips4)) in
                            rows_ref.chunks(4).zip(flips_ref.chunks(4)).enumerate()
                        {
                            let n = rows4.len();
                            single_source_value_multi(
                                env,
                                layer,
                                w,
                                rows4,
                                flips4,
                                scratch,
                                &mut counts[..n],
                                &mut vals[..n],
                            );
                            for (k, &v) in vals[..n].iter().enumerate() {
                                values[(g * 4 + k) * chunk.len() + i] = v;
                            }
                        }
                    }
                    // Per-target noise pass: block-compute the stream
                    // seeds, batch-seed the generators, and draw one keyed
                    // Laplace sample per stream.
                    for (ti, shard) in shards_ref.iter().enumerate() {
                        let (seeds, streams, noise) = scratch.round2_buffers();
                        seeds.clear();
                        seeds.extend(
                            chunk
                                .iter()
                                .map(|&w| user_stream_seed(shard.base_seed, u64::from(w))),
                        );
                        StdRng::seed_batch_from_u64(seeds, streams);
                        noise.clear();
                        noise.resize(chunk.len(), 0.0);
                        sample_laplace_each(shard.laplace.scale(), streams, noise);
                        let row = &mut values[ti * chunk.len()..(ti + 1) * chunk.len()];
                        for (slot, &n) in row.iter_mut().zip(noise.iter()) {
                            *slot += n;
                        }
                    }
                });
                values
            })
            .collect();

        // Assembly + sequential accounting per target, in the reference
        // order (shard order = candidate order minus the target).
        let mut reports = Vec::with_capacity(targets.len());
        for (ti, (shard, mut ctx)) in shards.iter().zip(ctxs).enumerate() {
            let mut estimates = Vec::with_capacity(candidates.len());
            for (ci, values) in chunk_values.iter().enumerate() {
                let start = ci * ROUND2_CHUNK;
                let chunk = &candidates[start..candidates.len().min(start + ROUND2_CHUNK)];
                for (i, &w) in chunk.iter().enumerate() {
                    if w != shard.target {
                        estimates.push(BatchEstimate {
                            candidate: w,
                            estimate: values[ti * chunk.len() + i],
                        });
                    }
                }
            }
            replay_round2_accounting(&mut ctx, &shard.noisy, shard.eps2, estimates.len())?;
            let (budget, transcript) = ctx.finish();
            reports.push(BatchReport {
                target: shard.target,
                layer,
                estimates,
                epsilon,
                budget,
                transcript,
            });
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Target u0 shares 8, 4, and 0 items with candidates u1, u2, u3.
    fn graph() -> BipartiteGraph {
        let edges = (0..10u32)
            .map(|v| (0u32, v))
            .chain((2..12u32).map(|v| (1u32, v)))
            .chain((6..16u32).map(|v| (2u32, v)))
            .chain((50..60u32).map(|v| (3u32, v)));
        BipartiteGraph::from_edges(4, 400, edges).unwrap()
    }

    #[test]
    fn batch_estimates_are_unbiased_per_candidate() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(3);
        let runs = 400;
        let mut sums = [0.0f64; 3];
        for _ in 0..runs {
            let report = algo
                .estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
                .unwrap();
            for (i, est) in report.estimates.iter().enumerate() {
                sums[i] += est.estimate;
            }
        }
        let truths = [8.0, 4.0, 0.0];
        for i in 0..3 {
            let mean = sums[i] / runs as f64;
            assert!(
                (mean - truths[i]).abs() < 0.6,
                "candidate {i}: mean {mean} vs truth {}",
                truths[i]
            );
        }
    }

    #[test]
    fn per_vertex_budget_is_epsilon_not_k_epsilon() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(5);
        let report = algo
            .estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
            .unwrap();
        // One sequential RR charge + one sequential Laplace charge; the other
        // candidates' Laplace charges are parallel, so total consumption is ε.
        assert!((report.budget.consumed() - 2.0).abs() < 1e-9);
        assert_eq!(report.estimates.len(), 3);
    }

    #[test]
    fn ranking_orders_by_estimate() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(9);
        // Use a generous budget so the ranking matches the ground truth.
        let report = algo
            .estimate_batch(&g, Layer::Upper, 0, &[3, 2, 1], 8.0, &mut rng)
            .unwrap();
        let ranked = report.ranked();
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].estimate >= ranked[1].estimate);
        assert!(ranked[1].estimate >= ranked[2].estimate);
        assert_eq!(ranked[0].candidate, 1, "u1 shares the most items with u0");
    }

    #[test]
    fn ranking_is_total_and_does_not_panic_on_nan() {
        use ldp::budget::PrivacyBudget;
        let report = BatchReport {
            target: 0,
            layer: Layer::Upper,
            estimates: vec![
                BatchEstimate {
                    candidate: 1,
                    estimate: 2.5,
                },
                BatchEstimate {
                    candidate: 2,
                    estimate: f64::NAN,
                },
                BatchEstimate {
                    candidate: 3,
                    estimate: 7.0,
                },
            ],
            epsilon: 1.0,
            budget: BudgetAccountant::new(PrivacyBudget::new(1.0).unwrap()),
            transcript: Transcript::new(),
        };
        let ranked = report.ranked();
        assert_eq!(ranked.len(), 3);
        // Finite values keep their order; the NaN is demoted to last instead
        // of panicking the sort or surfacing as the winner.
        let order: Vec<u32> = ranked.iter().map(|e| e.candidate).collect();
        assert_eq!(order, vec![3, 1, 2]);
        assert!(ranked[2].estimate.is_nan());
    }

    #[test]
    fn transcript_scales_with_candidates_but_uploads_target_once() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(7);
        let small = algo
            .estimate_batch_detailed(&g, Layer::Upper, 0, &[1], 2.0, &mut rng)
            .unwrap();
        let large = algo
            .estimate_batch_detailed(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
            .unwrap();
        // Exactly one upload of the target's noisy edges in both runs.
        let uploads = |r: &BatchReport| {
            r.transcript
                .messages()
                .iter()
                .filter(|m| m.label.starts_with("noisy-edges(v"))
                .count()
        };
        assert_eq!(uploads(&small), 1);
        assert_eq!(uploads(&large), 1);
        assert!(large.communication_bytes() > small.communication_bytes());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[], 2.0, &mut rng)
            .is_err());
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[0], 2.0, &mut rng)
            .is_err());
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[99], 2.0, &mut rng)
            .is_err());
        assert!(algo
            .estimate_batch(&g, Layer::Upper, 0, &[1], 0.0, &mut rng)
            .is_err());
        assert!(
            algo.estimate_batch(&g, Layer::Upper, 0, &[1, 2, 1], 2.0, &mut rng)
                .is_err(),
            "duplicate candidates must be rejected"
        );
    }

    #[test]
    fn batch_is_bit_identical_for_fixed_seed() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            algo.estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
                .unwrap()
        };
        let a = run(77);
        let b = run(77);
        let bits = |r: &BatchReport| -> Vec<u64> {
            r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
        };
        assert_eq!(bits(&a), bits(&b), "same seed must be byte-identical");
        let c = run(78);
        assert_ne!(bits(&a), bits(&c), "different seeds must differ");
    }

    #[test]
    fn candidate_streams_are_independent_of_batch_composition() {
        // A candidate's noise stream is keyed by (base seed, vertex id), so
        // its estimate must not change when other candidates join the batch.
        let g = graph();
        let algo = BatchSingleSource::default();
        let solo = algo
            .estimate_batch(
                &g,
                Layer::Upper,
                0,
                &[2],
                2.0,
                &mut StdRng::seed_from_u64(5),
            )
            .unwrap();
        let full = algo
            .estimate_batch(
                &g,
                Layer::Upper,
                0,
                &[1, 2, 3],
                2.0,
                &mut StdRng::seed_from_u64(5),
            )
            .unwrap();
        let solo_est = solo.estimates[0].estimate;
        let full_est = full
            .estimates
            .iter()
            .find(|e| e.candidate == 2)
            .unwrap()
            .estimate;
        assert_eq!(solo_est.to_bits(), full_est.to_bits());
    }

    #[test]
    fn split_phase_partition_matches_monolithic_byte_for_byte() {
        let g = graph();
        let algo = BatchSingleSource::default();
        let candidates = [1u32, 2, 3];
        let reference = algo
            .estimate_batch(
                &g,
                Layer::Upper,
                0,
                &candidates,
                2.0,
                &mut StdRng::seed_from_u64(11),
            )
            .unwrap();
        // Every partition of the candidate list must reassemble to the
        // identical report: estimates, budget ledger, and transcript.
        let env = ProtocolEnv::uncached(&g);
        for split in [
            &[&[1u32, 2, 3][..]][..],
            &[&[1], &[2, 3]],
            &[&[1], &[2], &[3]],
        ] {
            let mut rng = StdRng::seed_from_u64(11);
            let round1 = algo
                .round1_in(env, Layer::Upper, 0, &candidates, 2.0, &mut rng)
                .unwrap();
            let mut estimates = Vec::new();
            for slice in split {
                estimates.extend(batch_round2(env, Layer::Upper, slice, &round1).unwrap());
            }
            let assembled = algo
                .assemble_report(Layer::Upper, 0, &round1, estimates)
                .unwrap();
            let bits = |r: &BatchReport| -> Vec<u64> {
                r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
            };
            assert_eq!(bits(&assembled), bits(&reference));
            assert_eq!(assembled.budget, reference.budget);
            assert_eq!(assembled.transcript, reference.transcript);
            assert_eq!(
                assembled.budget.consumed().to_bits(),
                reference.budget.consumed().to_bits()
            );
            assert_eq!(
                serde_json::to_string(&assembled).unwrap(),
                serde_json::to_string(&reference).unwrap()
            );
        }
    }

    #[test]
    fn round1_artifacts_survive_a_wire_round_trip() {
        // Ship only what the wire protocol ships (row words + epsilons +
        // base seed), rebuild on the "far side", and the estimates and
        // report must still be byte-identical.
        use bigraph::bitset::PackedSet;
        use ldp::noisy_graph::NoisyNeighborsPacked;
        let g = graph();
        let algo = BatchSingleSource::default();
        let candidates = [1u32, 2, 3];
        let reference = algo
            .estimate_batch(
                &g,
                Layer::Upper,
                0,
                &candidates,
                2.0,
                &mut StdRng::seed_from_u64(23),
            )
            .unwrap();
        let env = ProtocolEnv::uncached(&g);
        let round1 = algo
            .round1_in(
                env,
                Layer::Upper,
                0,
                &candidates,
                2.0,
                &mut StdRng::seed_from_u64(23),
            )
            .unwrap();
        // Wire image: raw words + universe + scalar fields.
        let words = round1.noisy_target.set().as_words().to_vec();
        let universe = round1.noisy_target.set().universe();
        let rebuilt = BatchRound1 {
            epsilon: round1.epsilon,
            flip_probability: round1.flip_probability,
            eps2: round1.eps2,
            base_seed: round1.base_seed,
            noisy_target: NoisyNeighborsPacked::from_parts(
                0,
                Layer::Upper,
                round1.noisy_target.epsilon,
                PackedSet::from_words(words, universe),
            ),
        };
        let estimates = batch_round2(env, Layer::Upper, &candidates, &rebuilt).unwrap();
        let assembled = algo
            .assemble_report(Layer::Upper, 0, &rebuilt, estimates)
            .unwrap();
        assert_eq!(assembled.budget, reference.budget);
        assert_eq!(assembled.transcript, reference.transcript);
        for (a, b) in assembled.estimates.iter().zip(&reference.estimates) {
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
    }

    #[test]
    fn user_stream_seed_decorrelates_users() {
        let s = 42u64;
        let streams: Vec<u64> = (0..100).map(|v| user_stream_seed(s, v)).collect();
        let mut unique = streams.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), streams.len());
        assert_ne!(user_stream_seed(1, 0), user_stream_seed(2, 0));
    }

    #[test]
    fn serde_round_trip() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(21);
        let report = BatchSingleSource::default()
            .estimate_batch(&g, Layer::Upper, 0, &[1, 2], 2.0, &mut rng)
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.estimates.len(), 2);
        assert_eq!(back.target, 0);
    }
}

//! The persistent curator-side estimation engine.
//!
//! The per-algorithm modules implement *one* protocol run each. Serving
//! millions of repeated queries needs three things they cannot provide on
//! their own, and this module supplies all three:
//!
//! * [`AdjacencyStore`] — a lazily built, read-only cache of bit-packed
//!   ([`bigraph::bitset::PackedSet`]) true adjacencies, one bitmap per
//!   vertex and layer, plus per-layer degree statistics. Packing a vertex's
//!   neighbor list costs `O(degree + universe/64)`; the store pays that cost
//!   once per vertex per graph instead of once per query, so the word-parallel
//!   popcount intersections in the single-source hot loop start from warm
//!   bitmaps.
//! * [`RoundContext`] — the unified per-run state (privacy-budget accountant,
//!   byte-accurate message transcript, the RNG stream, and a reusable
//!   [`ScratchArena`]) that every protocol round reads and writes. It
//!   replaces the `&mut BudgetAccountant, &mut Transcript, &mut dyn RngCore`
//!   parameter trains the protocol modules used to thread through every
//!   helper.
//! * [`EstimationEngine`] — the facade applications talk to: build it once
//!   per graph, then call [`EstimationEngine::estimate`] /
//!   [`EstimationEngine::estimate_batch`] /
//!   [`EstimationEngine::estimate_many_targets`] as often as needed. Every
//!   call shares the same warm [`AdjacencyStore`].
//!
//! # Lean vs detailed accounting
//!
//! A [`RoundContext`] opened with [`RoundContext::begin`] records **lean**
//! accounting artifacts: the transcript keeps only the fixed-size
//! [`ldp::transcript::TranscriptStats`] counters and the budget accountant
//! keeps only its consumption totals, so recording a message or charging
//! the budget is pure arithmetic — no allocation, no label rendering. All
//! aggregate accessors (total/per-round/per-direction bytes, rounds,
//! consumed budget) are exact in this mode; only the per-message /
//! per-charge logs are absent. Open the context with
//! [`RoundContext::begin_detailed`] (or run through
//! [`run_detailed`] / `BatchSingleSource::estimate_batch_detailed`) to
//! additionally retain those logs for tests and debugging. Estimates and
//! aggregates are byte-identical across the two modes — the mode changes
//! *what is retained*, never what is computed.
//!
//! # Scratch-arena lifecycle
//!
//! The per-candidate hot loops used to allocate once per candidate (packing
//! an adjacency into a fresh bitmap, building label strings). A
//! [`ScratchArena`] bundles the reusable buffers — randomized-response
//! perturbation scratch, packed-word scratch for pack-then-popcount
//! intersections, and candidate id-list staging:
//!
//! * every [`RoundContext`] owns one arena for the sequential protocol
//!   steps of its run (buffers grow on first use, then are reused across
//!   rounds of the same run);
//! * the rayon fan-outs ([`crate::batch::BatchSingleSource`] round 2,
//!   [`EstimationEngine::estimate_many_targets`]) use one **thread-local**
//!   arena per worker, accessed through [`with_shard_scratch`], so each
//!   shard's inner candidate loop performs zero heap allocations once its
//!   buffers have grown to the working size (regression-tested with a
//!   counting allocator in `tests/alloc_regression.rs`).
//!
//! Arenas hold no protocol state — only capacity — so reuse can never
//! change a result: every scratch-based kernel counts the same set the
//! allocating kernel counted.
//!
//! # The packed-native round-1 pipeline
//!
//! Round-1 randomized response — the dominant cost of a warm batch — runs
//! **packed-native** end to end: every engine-routed protocol perturbs
//! through [`crate::protocol::randomized_response_round_packed`], which
//! writes each noisy row directly into bit-packed `u64` words
//! ([`ldp::noisy_graph::NoisyNeighborsPacked`]). Kept true neighbors OR in
//! word-wise from the [`AdjacencyStore`]'s cached bitmap
//! ([`ProtocolEnv::round1_true_bitmap`] — dense vertices build through the
//! admission-aware cache, sparse ones reuse a bitmap only if it already
//! exists), flipped zeros set bits as their skip-sampled ranks are
//! translated, and consumers popcount the words as-is — the warm path is
//! RNG → words → popcount with **zero intermediate id lists**. The
//! underlying draws come from `ldp`'s batched gap pipeline (block fills,
//! exact threshold tables cached on the [`ScratchArena`]).
//!
//! **Draw-sequence compatibility:** the packed round consumes the RNG
//! stream draw-for-draw identically to the legacy list-producing round and
//! produces the same bit set, so estimates are byte-identical whichever
//! representation ran — pinned across revisions by
//! `tests/pinned_fingerprints.rs`. Callers that genuinely need id lists
//! (wire-format simulation, serialization) use the legacy round or
//! [`ldp::noisy_graph::NoisyNeighborsPacked::materialize`].
//!
//! # Cache lifecycle
//!
//! The store is immutable-after-init per slot *between update batches*:
//! each vertex's bitmap is built on first use (from any thread — slots are
//! [`std::sync::OnceLock`]s) and only dropped when an update batch touches
//! its vertex. A store must only ever be used with the graph it was created
//! for; [`EstimationEngine`] enforces that pairing by construction. Sparse
//! vertices never get packed at all — the degree-aware dispatch only consults
//! the cache for vertices dense enough that popcount beats per-id probing —
//! so memory stays proportional to the number of *dense* vertices actually
//! queried. Call [`EstimationEngine::warm`] (or [`AdjacencyStore::warm`]) to
//! pre-build a layer's *dense* vertices up front (sparse ones are skipped —
//! no query path ever reads their bitmaps), e.g. before latency-sensitive
//! serving.
//!
//! # Mutation & invalidation lifecycle
//!
//! Edges arrive and retire while the curator keeps serving: the graph side
//! is an epoch-counted [`bigraph::delta::UpdateBatch`] spliced in place by
//! [`bigraph::BipartiteGraph::apply_update_batch`], and
//! [`EstimationEngine::apply_updates`] is the engine-side transaction that
//! keeps the cache coherent with it. The lifecycle per applied batch:
//!
//! 1. **Validate, then splice.** The batch is validated against the current
//!    graph first; a rejected batch leaves graph, cache, and generation
//!    untouched. A valid batch lands in one merge pass over the CSR arrays.
//! 2. **Precise invalidation.** Only the *touched* vertices' cached
//!    [`PackedSet`]s are dropped ([`AdjacencyStore::invalidate_applied`]);
//!    every other entry stays warm. Cached [`LayerStats`] are cleared (any
//!    edge moves both layers' degree distributions). The one coarse case is
//!    vertex addition: growing a layer grows the bitmap universe of the
//!    *opposite* layer, so that layer's entries are all dropped — their
//!    word counts no longer match a fresh pack.
//! 3. **Epochs.** Every slot is tagged with the store epoch it was built
//!    at ([`AdjacencyStore::entry_epoch`]); invalidation advances the store
//!    epoch to the graph's. Because every touched entry is dropped, a
//!    cached entry is always bit-identical to a fresh pack of the current
//!    adjacency — the **determinism contract survives mutation**: after any
//!    update sequence, engine estimates are byte-identical to a cold engine
//!    built on the post-update graph (property-tested in
//!    `tests/streaming_updates.rs`).
//! 4. **Generations.** Effective batches bump
//!    [`EstimationEngine::generation`]. Readers that derive state from
//!    query results (candidate sets, rankings) snapshot the generation and
//!    re-check it via [`EstimationEngine::check_generation`] or the
//!    [`EstimationEngine::estimate_at`] /
//!    [`EstimationEngine::estimate_batch_at`] guards, turning
//!    read-your-stale-writes races into explicit
//!    [`CneError::StaleGeneration`] retries.
//!
//! # Serving lifecycle
//!
//! Two ways to keep serving while the graph moves, by ownership model:
//!
//! * **Single-owner loop** — one thread owns the engine, alternating
//!   [`EstimationEngine::apply_updates`] and query rounds. Readers guard
//!   with the generation-checked entry points and, instead of hand-rolling
//!   the retry, can use [`EstimationEngine::estimate_with_retry`] /
//!   [`EstimationEngine::estimate_batch_with_retry`]: a
//!   [`CneError::StaleGeneration`] rejection carries the current
//!   generation, so the helper re-resolves the cursor and retries within a
//!   bound — staleness is a *retry hint*, not a failure. The cost of this
//!   model is the stop-the-world splice: every batch blocks queries for a
//!   full CSR merge pass.
//! * **Serving tier** — [`crate::serving::ServingEngine`] removes that
//!   stall with epoch-pinned double-buffering. Readers pin a snapshot
//!   (`snapshot()` — a slot CAS, no locks, no allocation), query it like
//!   any engine, and retire it by dropping; a dedicated writer thread
//!   drains the producer-sharded [`bigraph::UpdateLog`] in bounded
//!   batches, splices the *offline* buffer (coalescing everything pending
//!   into one merge pass), pre-warms the touched bitmaps, and publishes by
//!   bumping the epoch. Queries never wait on a splice, and every pinned
//!   answer is byte-identical to a cold engine at the pinned epoch
//!   (`tests/serving_swap.rs`). See the [`crate::serving`] module docs for
//!   the pin/publish protocol and its freshness ↔ throughput trade.
//!
//! # Bounded caches (LRU eviction)
//!
//! Graphs too large to cache every dense vertex use
//! [`AdjacencyStore::with_byte_cap`] (engine:
//! [`EstimationEngine::with_cache_budget`]): built bitmaps are byte-
//! accounted, and an insertion that would exceed the cap is *declined* —
//! the query falls back to scratch packing, so results never depend on
//! admission decisions, and the accounting compare-exchange guarantees the
//! budget is never exceeded, not even transiently. Every read stamps its
//! slot with a monotonic recency tick; [`AdjacencyStore::maintain`] (run
//! automatically at the end of every `apply_updates`, or manually via
//! [`EstimationEngine::maintain_cache`]) reacts to declined admissions by
//! evicting least-recently-stamped entries until a quarter of the budget is
//! free, letting the current hot set in. Eviction, like invalidation,
//! cannot change any estimate — only where the bits are counted from. The
//! warm path stays allocation-free: recency stamps are relaxed atomic
//! stores, and declined vertices pack into the worker's scratch arena.
//!
//! # Determinism contract
//!
//! Engine results are a pure function of `(graph, query, epsilon, seed)`:
//!
//! * cached and uncached paths are **byte-identical** — the cache only
//!   changes *how* an intersection is counted, never the count, so every
//!   downstream floating-point operation sees identical inputs;
//! * parallel fan-outs ([`EstimationEngine::estimate_batch`] round 2,
//!   [`EstimationEngine::estimate_many_targets`]) derive one RNG stream per
//!   participating user as `mix(seed, vertex id)`
//!   ([`crate::batch::user_stream_seed`]) — never from thread scheduling —
//!   so output is byte-identical at any `RAYON_NUM_THREADS`.
//!
//! Both properties are enforced by regression tests
//! (`tests/engine_determinism.rs`).
//!
//! # Sharding story
//!
//! [`EstimationEngine::estimate_many_targets`] fans `targets × candidates`
//! over rayon. Logically each target shard runs the whole batch protocol on
//! its own `mix(seed, target)` stream, and inside a shard every candidate
//! estimator runs on its own `mix(base, candidate)` stream. Physically the
//! execution is **fused candidate-major**: round 1 runs per target in
//! target order (so the first validation error matches the sequential
//! reference), then one parallel pass over *candidate chunks* computes the
//! dense `targets × chunk` value block — each candidate's adjacency is
//! resolved once and counted against every target's noisy row while it is
//! cache-hot ([`ProtocolEnv::true_intersection_multi_scratch`]), and each
//! chunk's per-user RNG streams are seeded in batch and given their Laplace
//! draw in bulk. Because every `(target, candidate)` estimate depends only
//! on its own independently keyed stream, the fused schedule is
//! byte-identical to the per-shard one; and because no stream depends on
//! placement, the same contract extends across processes or machines —
//! shard the target list however is convenient and concatenate the reports.
//!
//! # Kernel dispatch
//!
//! The data-parallel kernels under the hot paths — `popcount`/AND-popcount
//! over packed words ([`bigraph::bitset`]) and the ChaCha block core
//! (vendored `rand_chacha`) — pick a hardware tier **once per process**: a
//! `OnceLock`'d function pointer is installed after runtime CPU-feature
//! detection (`is_x86_feature_detected!`), choosing AVX2, then `popcnt`,
//! then the portable software implementation. Every tier computes exact
//! integer counts (or the exact keystream), so dispatch can never change an
//! estimate — only its speed; the adversarial-length equivalence tests in
//! `bigraph::bitset` pin every selectable tier to the scalar reference.
//! Setting `CNE_FORCE_PORTABLE_KERNELS=1` (read once at first dispatch)
//! pins every dispatcher to the portable tier — the escape hatch for
//! A/B-testing a suspect hardware kernel or reproducing results on exotic
//! hardware; CI runs the full `bigraph`/`ldp`/`cne` suites under it.
//! The same detect-once philosophy covers the batched scalar pipelines:
//! per-user RNG setup seeds stream blocks through
//! `StdRng::seed_batch_from_u64` (interleaved SplitMix64 lanes,
//! state-identical to per-seed setup), and round-2 noise pulls its uniforms
//! in bulk via [`ldp::laplace::sample_laplace_block`] /
//! [`ldp::laplace::sample_laplace_each`] (draw-for-draw identical to the
//! scalar sampler).

use crate::batch::{user_stream_seed, BatchReport, BatchSingleSource};
use crate::central::CentralDP;
use crate::double_source::{MultiRDS, MultiRDSBasic, MultiRDSStar};
use crate::error::{CneError, Result};
use crate::estimate::{AlgorithmKind, EstimateReport};
use crate::estimator::CommonNeighborEstimator;
use crate::naive::Naive;
use crate::one_round::OneR;
use crate::protocol::Query;
use crate::single_source::MultiRSS;
use bigraph::bitset::{PackScratch, PackedSet};
use bigraph::delta::{AppliedBatch, UpdateBatch};
use bigraph::snapshot::GraphSnapshot;
use bigraph::{BipartiteGraph, Layer, VertexId};
use ldp::budget::{BudgetAccountant, Composition, PrivacyBudget};
use ldp::noisy_graph::{NoisyNeighbors, NoisyNeighborsPacked};
use ldp::randomized_response::PerturbScratch;
use ldp::transcript::{Direction, Label, Transcript};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Aggregate degree statistics of one graph layer, computed once and cached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Number of vertices on the layer.
    pub vertices: usize,
    /// Number of edges incident to the layer (= `|E|` for either layer).
    pub edges: usize,
    /// Largest vertex degree on the layer.
    pub max_degree: usize,
    /// Mean vertex degree on the layer (0 for an empty layer).
    pub mean_degree: f64,
}

/// One cache slot: the lazily built bitmap plus its bookkeeping tags.
///
/// `set` is initialized at most once between invalidations; `stamp` is a
/// recency tick (updated relaxed on every read — the eviction policy's
/// LRU signal) and `built_epoch` records the store epoch the bitmap was
/// built at, so tests and debug assertions can prove an entry is fresh.
#[derive(Debug, Default)]
struct Slot {
    set: OnceLock<PackedSet>,
    stamp: AtomicU64,
    built_epoch: AtomicU64,
}

/// Heap bytes of one packed bitmap over `universe` opposite-layer slots.
fn slot_bytes(universe: usize) -> usize {
    universe.div_ceil(64) * std::mem::size_of::<u64>()
}

/// A lazily built, shareable cache of bit-packed true adjacencies.
///
/// One slot per vertex and layer; each slot is initialized at most once
/// between invalidations (on first use, from whichever thread gets there
/// first) and then shared read-only until the next update batch touches its
/// vertex. Stores created with [`AdjacencyStore::with_byte_cap`] additionally
/// enforce a hard byte budget: insertions past the cap are declined (the
/// query falls back to scratch packing, bit-identically) and recorded as
/// cache pressure, which the next [`AdjacencyStore::maintain`] call relieves
/// by evicting the least-recently-used entries. See the
/// [module docs](self) for the full mutation & invalidation lifecycle.
#[derive(Debug)]
pub struct AdjacencyStore {
    upper: Vec<Slot>,
    lower: Vec<Slot>,
    upper_stats: OnceLock<LayerStats>,
    lower_stats: OnceLock<LayerStats>,
    /// Hard byte budget for built bitmaps (`None` = unbounded).
    cap_bytes: Option<usize>,
    /// Bytes currently accounted to built bitmaps. Never exceeds `cap_bytes`.
    bytes_used: AtomicUsize,
    /// Monotonic recency clock; every read stamps its slot with a fresh tick.
    tick: AtomicU64,
    /// Admissions declined since the last [`AdjacencyStore::maintain`].
    declined: AtomicU64,
    /// The store's view of the graph epoch (bumped by invalidation).
    epoch: AtomicU64,
}

impl AdjacencyStore {
    /// Creates an unbounded store sized for `g`. No bitmaps are built yet.
    #[must_use]
    pub fn new(g: &BipartiteGraph) -> Self {
        Self::build(g, None)
    }

    /// Creates a store whose built bitmaps may never exceed `max_bytes` of
    /// heap. Queries against vertices that cannot be admitted fall back to
    /// scratch packing (bit-identical results); [`AdjacencyStore::maintain`]
    /// evicts cold entries when admissions were declined.
    #[must_use]
    pub fn with_byte_cap(g: &BipartiteGraph, max_bytes: usize) -> Self {
        Self::build(g, Some(max_bytes))
    }

    fn build(g: &BipartiteGraph, cap_bytes: Option<usize>) -> Self {
        let mut upper = Vec::new();
        let mut lower = Vec::new();
        upper.resize_with(g.n_upper(), Slot::default);
        lower.resize_with(g.n_lower(), Slot::default);
        Self {
            upper,
            lower,
            upper_stats: OnceLock::new(),
            lower_stats: OnceLock::new(),
            cap_bytes,
            bytes_used: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            declined: AtomicU64::new(0),
            epoch: AtomicU64::new(g.epoch()),
        }
    }

    fn slots(&self, layer: Layer) -> &[Slot] {
        match layer {
            Layer::Upper => &self.upper,
            Layer::Lower => &self.lower,
        }
    }

    fn slots_mut(&mut self, layer: Layer) -> &mut Vec<Slot> {
        match layer {
            Layer::Upper => &mut self.upper,
            Layer::Lower => &mut self.lower,
        }
    }

    /// Reserves `cost` bytes against the cap. With a cap, the running total
    /// is only ever advanced through a compare-exchange that re-checks the
    /// budget, so `bytes_used` can never exceed `cap_bytes` — not even
    /// transiently under concurrent admission races.
    fn try_admit(&self, cost: usize) -> bool {
        match self.cap_bytes {
            None => {
                self.bytes_used.fetch_add(cost, Ordering::Relaxed);
                true
            }
            Some(cap) => {
                let mut cur = self.bytes_used.load(Ordering::Relaxed);
                loop {
                    let Some(next) = cur.checked_add(cost).filter(|&n| n <= cap) else {
                        self.declined.fetch_add(1, Ordering::Relaxed);
                        return false;
                    };
                    match self.bytes_used.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return true,
                        Err(actual) => cur = actual,
                    }
                }
            }
        }
    }

    /// The packed true adjacency of vertex `v` on `layer`, built on first
    /// use — or `None` when the store is byte-capped and admitting this
    /// bitmap would exceed the budget (the caller packs into scratch
    /// instead; the count is identical either way). Reads stamp the slot's
    /// recency tick for the LRU eviction policy.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `layer`, or if `g` is not the graph
    /// this store was created for (detected via a layer-size mismatch).
    #[must_use]
    pub fn try_packed(&self, g: &BipartiteGraph, layer: Layer, v: VertexId) -> Option<&PackedSet> {
        let slots = self.slots(layer);
        assert_eq!(
            slots.len(),
            g.layer_size(layer),
            "AdjacencyStore used with a graph it was not built for"
        );
        let slot = &slots[v as usize];
        if let Some(set) = slot.set.get() {
            slot.stamp.store(self.next_tick(), Ordering::Relaxed);
            return Some(set);
        }
        let universe = g.layer_size(layer.opposite());
        let cost = slot_bytes(universe);
        if !self.try_admit(cost) {
            return None;
        }
        let mut installed = false;
        let set = slot.set.get_or_init(|| {
            installed = true;
            slot.built_epoch
                .store(self.epoch.load(Ordering::Relaxed), Ordering::Relaxed);
            PackedSet::from_sorted(g.neighbors(layer, v), universe)
        });
        if !installed {
            // Lost the init race: the winner accounted the identical cost.
            self.bytes_used.fetch_sub(cost, Ordering::Relaxed);
        }
        slot.stamp.store(self.next_tick(), Ordering::Relaxed);
        Some(set)
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// [`AdjacencyStore::try_packed`] for unbounded stores, where admission
    /// never fails.
    ///
    /// # Panics
    ///
    /// Panics under the contract of [`AdjacencyStore::try_packed`], and
    /// additionally if this store is byte-capped and the budget is
    /// exhausted — capped callers should use `try_packed`.
    #[must_use]
    pub fn packed(&self, g: &BipartiteGraph, layer: Layer, v: VertexId) -> &PackedSet {
        self.try_packed(g, layer, v)
            .expect("adjacency store byte budget exhausted — use try_packed on capped stores")
    }

    /// The bitmap for `v` if it has already been built, without building it
    /// (and without touching the recency stamp).
    #[must_use]
    pub fn cached(&self, layer: Layer, v: VertexId) -> Option<&PackedSet> {
        self.slots(layer).get(v as usize).and_then(|s| s.set.get())
    }

    /// How many vertices of `layer` currently have a built bitmap.
    #[must_use]
    pub fn cached_count(&self, layer: Layer) -> usize {
        self.slots(layer)
            .iter()
            .filter(|slot| slot.set.get().is_some())
            .count()
    }

    /// Heap bytes currently held by built bitmaps. With a byte cap this
    /// never exceeds [`AdjacencyStore::byte_cap`].
    #[must_use]
    pub fn bytes_used(&self) -> usize {
        self.bytes_used.load(Ordering::Relaxed)
    }

    /// The configured byte budget, if any.
    #[must_use]
    pub fn byte_cap(&self) -> Option<usize> {
        self.cap_bytes
    }

    /// The store's epoch: its view of the graph mutation counter, advanced
    /// by [`AdjacencyStore::invalidate_applied`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The store epoch the cached bitmap of `v` was built at, if one is
    /// currently built. An entry's epoch always equals the epoch of some
    /// state in which its vertex's adjacency was identical to now —
    /// invalidation drops every touched entry, so stale tags cannot occur.
    #[must_use]
    pub fn entry_epoch(&self, layer: Layer, v: VertexId) -> Option<u64> {
        let slot = self.slots(layer).get(v as usize)?;
        slot.set
            .get()
            .map(|_| slot.built_epoch.load(Ordering::Relaxed))
    }

    /// Pre-builds the bitmaps of every *dense* vertex on `layer` — those the
    /// degree-aware dispatch ([`ProtocolEnv::true_intersection_with`]) will
    /// actually read. Sparse vertices are skipped: their queries take the
    /// probe path, so packing them would only burn memory
    /// (`⌈universe/64⌉ · 8` bytes each) that no query ever touches. On a
    /// byte-capped store, warming stops admitting once the budget is full
    /// (highest-degree vertices are *not* prioritized — warm order is id
    /// order).
    pub fn warm(&self, g: &BipartiteGraph, layer: Layer) {
        let words = g.layer_size(layer.opposite()).div_ceil(64);
        for v in 0..g.layer_size(layer) as VertexId {
            if g.degree(layer, v) > 2 * words {
                let _ = self.try_packed(g, layer, v);
            }
        }
    }

    /// Targeted warm-up: pre-builds the packed adjacency of just the given
    /// `layer` vertices (skipping the sparse ones, same density heuristic
    /// as [`AdjacencyStore::warm`]). The serving writer calls this with an
    /// applied batch's touched sets so the bitmaps invalidated by a splice
    /// are rebuilt *before* the buffer is published, not on the first
    /// query that misses them.
    pub fn warm_vertices(&self, g: &BipartiteGraph, layer: Layer, vertices: &[VertexId]) {
        let words = g.layer_size(layer.opposite()).div_ceil(64);
        for &v in vertices {
            if (v as usize) < g.layer_size(layer) && g.degree(layer, v) > 2 * words {
                let _ = self.try_packed(g, layer, v);
            }
        }
    }

    /// Installs pre-built bitmaps into many slots of one layer in a
    /// single pass — the snapshot adoption path: a loaded snapshot's
    /// packed sections go straight into the store, no re-pack. Adoption
    /// happens at construction time under exclusive access (`&mut`),
    /// which lets this skip [`AdjacencyStore::try_packed`]'s per-entry
    /// atomic admission round-trips while keeping its exact admission
    /// semantics: entries are admitted in the given
    /// (vertex-id) order, each charged the same `slot_bytes` cost against
    /// any byte cap, and an entry that is already built or does not fit
    /// is declined — queries rebuild it on demand, bit-identically.
    /// Returns how many bitmaps were installed.
    fn preload_bulk(
        &mut self,
        g: &BipartiteGraph,
        layer: Layer,
        entries: &[(VertexId, PackedSet)],
    ) -> usize {
        assert_eq!(
            self.slots(layer).len(),
            g.layer_size(layer),
            "AdjacencyStore preloaded from a snapshot it was not built for"
        );
        let cost = slot_bytes(g.layer_size(layer.opposite()));
        let epoch = *self.epoch.get_mut();
        let cap = self.cap_bytes;
        let mut used = *self.bytes_used.get_mut();
        let mut declined = 0u64;
        let mut installed = 0usize;
        let slots = self.slots_mut(layer);
        for (v, set) in entries {
            debug_assert_eq!(
                set.to_sorted_ids(),
                g.neighbors(layer, *v),
                "preloaded bitmap disagrees with the graph's adjacency"
            );
            let slot = &mut slots[*v as usize];
            if slot.set.get().is_some() {
                continue;
            }
            if cap.is_some_and(|cap| used.checked_add(cost).is_none_or(|n| n > cap)) {
                declined += 1;
                continue;
            }
            used += cost;
            slot.set = OnceLock::from(set.clone());
            *slot.built_epoch.get_mut() = epoch;
            installed += 1;
        }
        *self.bytes_used.get_mut() = used;
        *self.declined.get_mut() += declined;
        installed
    }

    /// Applies the receipt of an update batch: grows the slot tables for
    /// appended vertices, drops exactly the cached bitmaps the batch
    /// invalidated, refreshes the epoch, and clears the cached layer stats.
    ///
    /// Invalidation is *precise* for edge updates — only the touched
    /// vertices' entries are dropped; everything else stays warm. The one
    /// coarse case is vertex addition: appending a vertex to a layer grows
    /// the universe every *opposite*-layer bitmap ranges over, so those
    /// entries are all dropped (their word counts no longer match a
    /// fresh pack). Ends with [`AdjacencyStore::maintain`] so a capped
    /// store under pressure frees headroom in the same step.
    pub fn invalidate_applied(&mut self, g: &BipartiteGraph, applied: &AppliedBatch) {
        if applied.is_noop() {
            return;
        }
        for layer in [Layer::Upper, Layer::Lower] {
            let n = g.layer_size(layer);
            let slots = self.slots_mut(layer);
            assert!(
                slots.len() <= n,
                "AdjacencyStore invalidated against a graph it was not built for"
            );
            slots.resize_with(n, Slot::default);
        }
        for layer in [Layer::Upper, Layer::Lower] {
            let mut freed = 0usize;
            if applied.vertices_added(layer.opposite()) > 0 {
                // This layer's bitmaps range over the opposite layer, which
                // just grew: none of them match a fresh pack any more, so
                // the whole layer drops (touched or not).
                for slot in self.slots_mut(layer).iter_mut() {
                    if let Some(set) = slot.set.take() {
                        freed += std::mem::size_of_val(set.as_words());
                        *slot.stamp.get_mut() = 0;
                    }
                }
            } else {
                // Universe unchanged: drop exactly the touched vertices.
                let touched = applied.touched(layer);
                let slots = self.slots_mut(layer);
                for &v in touched {
                    if let Some(set) = slots[v as usize].set.take() {
                        freed += std::mem::size_of_val(set.as_words());
                        *slots[v as usize].stamp.get_mut() = 0;
                    }
                }
            }
            *self.bytes_used.get_mut() -= freed;
        }
        // Degree distributions shifted on both layers (every edge has one
        // endpoint in each), so both stat caches are stale.
        self.upper_stats = OnceLock::new();
        self.lower_stats = OnceLock::new();
        *self.epoch.get_mut() = g.epoch();
        self.maintain();
    }

    /// Relieves cache pressure on a byte-capped store: if any admission was
    /// declined since the last call, evicts least-recently-stamped entries
    /// until a quarter of the budget is free, so the current hot set can be
    /// admitted on its next read. A no-op on unbounded stores and when no
    /// admission was declined. Never exceeds — only lowers — `bytes_used`.
    pub fn maintain(&mut self) {
        let Some(cap) = self.cap_bytes else {
            return;
        };
        if *self.declined.get_mut() == 0 {
            return;
        }
        *self.declined.get_mut() = 0;
        let target = cap - cap / 4;
        if *self.bytes_used.get_mut() <= target {
            return;
        }
        // Coldest-first eviction order over every built entry.
        let mut entries: Vec<(u64, Layer, usize)> = Vec::new();
        for layer in [Layer::Upper, Layer::Lower] {
            for (i, slot) in self.slots_mut(layer).iter_mut().enumerate() {
                if slot.set.get().is_some() {
                    entries.push((*slot.stamp.get_mut(), layer, i));
                }
            }
        }
        entries.sort_unstable();
        for (_, layer, i) in entries {
            if *self.bytes_used.get_mut() <= target {
                break;
            }
            let slot = &mut self.slots_mut(layer)[i];
            if let Some(set) = slot.set.take() {
                let freed = std::mem::size_of_val(set.as_words());
                *slot.stamp.get_mut() = 0;
                *self.bytes_used.get_mut() -= freed;
            }
        }
    }

    /// Degree statistics of `layer`, computed on first use and cached.
    pub fn stats(&self, g: &BipartiteGraph, layer: Layer) -> LayerStats {
        let cell = match layer {
            Layer::Upper => &self.upper_stats,
            Layer::Lower => &self.lower_stats,
        };
        *cell.get_or_init(|| {
            let vertices = g.layer_size(layer);
            let mut edges = 0usize;
            let mut max_degree = 0usize;
            for v in 0..vertices as VertexId {
                let d = g.degree(layer, v);
                edges += d;
                max_degree = max_degree.max(d);
            }
            let mean_degree = if vertices == 0 {
                0.0
            } else {
                edges as f64 / vertices as f64
            };
            LayerStats {
                vertices,
                edges,
                max_degree,
                mean_degree,
            }
        })
    }
}

/// The read-only environment a protocol run executes in: the graph plus an
/// optional warm [`AdjacencyStore`].
///
/// `Copy` so it can be captured by value in parallel closures. With
/// `store: None` every intersection falls back to the pack-per-call strategy
/// of [`bigraph::bitset::intersection_size_degree_aware`] — the legacy
/// uncached path, byte-identical to the cached one.
#[derive(Clone, Copy)]
pub struct ProtocolEnv<'a> {
    /// The graph both vertex- and curator-side steps read.
    pub graph: &'a BipartiteGraph,
    /// The shared adjacency cache, if the run goes through an engine.
    pub store: Option<&'a AdjacencyStore>,
}

impl<'a> ProtocolEnv<'a> {
    /// An environment with no adjacency cache (the legacy one-shot path).
    #[must_use]
    pub fn uncached(graph: &'a BipartiteGraph) -> Self {
        Self { graph, store: None }
    }

    /// An environment backed by a warm adjacency cache.
    #[must_use]
    pub fn cached(graph: &'a BipartiteGraph, store: &'a AdjacencyStore) -> Self {
        Self {
            graph,
            store: Some(store),
        }
    }

    /// Counts `|N(v) ∩ other|` for the *true* neighborhood of `v`, using the
    /// cheapest available strategy.
    ///
    /// Sparse `v` probes `other` per neighbor id; dense `v` uses a
    /// word-parallel popcount against the cached bitmap when a store is
    /// available (packing on the fly otherwise). All strategies count the
    /// same set, so the result — and everything derived from it — is
    /// identical with and without a store. The density threshold matches
    /// [`bigraph::bitset::intersection_size_degree_aware`] exactly.
    #[must_use]
    pub fn true_intersection_with(&self, layer: Layer, v: VertexId, other: &PackedSet) -> u64 {
        let neighbors = self.graph.neighbors(layer, v);
        if let Some(store) = self.store {
            let words = other.universe().div_ceil(64);
            if neighbors.len() > 2 * words {
                // A byte-capped store may decline to cache; the fall-through
                // packs on the fly and counts the identical set.
                if let Some(packed) = store.try_packed(self.graph, layer, v) {
                    return packed.intersection_size(other);
                }
            }
        }
        bigraph::bitset::intersection_size_degree_aware(neighbors, other)
    }

    /// [`ProtocolEnv::true_intersection_with`] with a reusable pack buffer:
    /// when the dense fallback would pack `v`'s adjacency into a fresh
    /// bitmap (no store, or the store declined), it packs into `scratch`
    /// instead. Same strategy thresholds, same count — bit-identical.
    #[must_use]
    pub fn true_intersection_with_scratch(
        &self,
        layer: Layer,
        v: VertexId,
        other: &PackedSet,
        scratch: &mut ScratchArena,
    ) -> u64 {
        let neighbors = self.graph.neighbors(layer, v);
        if let Some(store) = self.store {
            let words = other.universe().div_ceil(64);
            if neighbors.len() > 2 * words {
                if let Some(packed) = store.try_packed(self.graph, layer, v) {
                    return packed.intersection_size(other);
                }
            }
        }
        bigraph::bitset::intersection_size_degree_aware_into(neighbors, other, &mut scratch.pack)
    }

    /// Counts `|N(v) ∩ rowᵢ|` for several packed rows sharing one universe,
    /// writing one count per row into `out`.
    ///
    /// Per-row results are bit-identical to calling
    /// [`ProtocolEnv::true_intersection_with_scratch`] once per row, but the
    /// strategy dispatch runs **once** per candidate instead of once per
    /// (candidate, row) pair: a dense `v` is resolved to a single word slice
    /// (cached bitmap, or one scratch pack instead of one per row) and then
    /// counted against all rows through the tiled
    /// [`bigraph::bitset::popcount_and_multi`], which streams the candidate
    /// bitmap from memory once while the rows ride in cache. This is the
    /// kernel under the fused multi-target round 2, where every candidate is
    /// intersected against every target's noisy row.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `out` have different lengths.
    pub fn true_intersection_multi_scratch(
        &self,
        layer: Layer,
        v: VertexId,
        rows: &[&PackedSet],
        scratch: &mut ScratchArena,
        out: &mut [u64],
    ) {
        assert_eq!(rows.len(), out.len(), "one output count per row");
        let Some(first) = rows.first() else { return };
        let universe = first.universe();
        debug_assert!(
            rows.iter().all(|r| r.universe() == universe),
            "rows must share a universe"
        );
        let neighbors = self.graph.neighbors(layer, v);
        let words = universe.div_ceil(64);
        if neighbors.len() > 2 * words {
            // Dense: resolve v's bitmap once — same threshold and same
            // sources (store, else scratch pack) as the per-row path, so
            // every count is the popcount of the identical word pair.
            let packed_words: &[u64] =
                match self.store.and_then(|s| s.try_packed(self.graph, layer, v)) {
                    Some(packed) => packed.as_words(),
                    None => scratch.pack.pack(neighbors, universe),
                };
            let mut group: [&[u64]; 4] = [&[]; 4];
            for (rows4, out4) in rows.chunks(4).zip(out.chunks_mut(4)) {
                for (slot, row) in group.iter_mut().zip(rows4) {
                    *slot = row.as_words();
                }
                bigraph::bitset::popcount_and_multi(packed_words, &group[..rows4.len()], out4);
            }
        } else {
            // Sparse: the per-row probe loop is already one pass over the
            // short id list per row; nothing to share.
            for (slot, row) in out.iter_mut().zip(rows) {
                *slot = bigraph::bitset::intersection_size_degree_aware_into(
                    neighbors,
                    row,
                    &mut scratch.pack,
                );
            }
        }
    }

    /// The cached true-adjacency bitmap the packed round-1 perturbation
    /// ORs kept neighbors from, if one is available for `v`.
    ///
    /// Density policy matches the intersection dispatch: a *dense* vertex
    /// (`degree > 2 · words`) is worth building through
    /// [`AdjacencyStore::try_packed`] (admission-aware on capped stores);
    /// a sparse vertex is only reused opportunistically when its bitmap
    /// already exists — building one that no intersection will read would
    /// waste exactly the memory the density dispatch exists to save. A
    /// `None` changes only how the kept bits are written (bit-by-bit from
    /// the id list), never the output.
    #[must_use]
    pub fn round1_true_bitmap(&self, layer: Layer, v: VertexId) -> Option<&'a PackedSet> {
        let store = self.store?;
        let words = self.graph.layer_size(layer.opposite()).div_ceil(64);
        if self.graph.neighbors(layer, v).len() > 2 * words {
            store.try_packed(self.graph, layer, v)
        } else {
            store.cached(layer, v)
        }
    }
}

/// Reusable per-run / per-shard working buffers (see the
/// [module docs](self) for the lifecycle).
///
/// An arena holds only capacity, never protocol state: every kernel that
/// borrows a buffer fully overwrites it before reading, so reuse cannot
/// change any result.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Packed-word scratch for pack-then-popcount intersections.
    pack: PackScratch,
    /// Candidate id-list staging (duplicate checks, shard candidate lists).
    ids: Vec<VertexId>,
    /// Randomized-response perturbation scratch: event/survivor staging
    /// buffers plus the cached exact gap-resolution tables (see
    /// [`ldp::randomized_response::PerturbScratch`]). Holding the table
    /// cache here — not just thread-local — keeps it warm across the
    /// protocol steps of a run and across a worker's candidates.
    rr: PerturbScratch,
    /// Round-2 fan-out staging: per-chunk user stream seeds, the
    /// batch-seeded generator states, and the keyed noise block (see
    /// `crate::batch`'s candidate-major multi-target round 2).
    r2_seeds: Vec<u64>,
    r2_streams: Vec<StdRng>,
    r2_noise: Vec<f64>,
}

impl ScratchArena {
    /// Creates an empty arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The packed-word scratch buffer.
    pub fn pack_scratch(&mut self) -> &mut PackScratch {
        &mut self.pack
    }

    /// Takes the id-list buffer out of the arena (cleared), so it can be
    /// used while the arena is borrowed elsewhere — e.g. a shard candidate
    /// list that must stay alive across a nested protocol run. Return it
    /// with [`ScratchArena::put_ids`] to keep the capacity warm.
    #[must_use]
    pub fn take_ids(&mut self) -> Vec<VertexId> {
        let mut ids = std::mem::take(&mut self.ids);
        ids.clear();
        ids
    }

    /// Returns a buffer taken with [`ScratchArena::take_ids`].
    pub fn put_ids(&mut self, ids: Vec<VertexId>) {
        // Keep whichever buffer has more capacity warm.
        if ids.capacity() > self.ids.capacity() {
            self.ids = ids;
        }
    }

    /// The randomized-response perturbation scratch (staging buffers and
    /// the per-arena gap-table cache).
    pub fn perturb_scratch(&mut self) -> &mut PerturbScratch {
        &mut self.rr
    }

    /// The round-2 fan-out staging buffers — `(stream seeds, generator
    /// states, noise block)` — borrowed together so a chunk worker can
    /// batch-seed ([`StdRng::seed_batch_from_u64`]) into one buffer while
    /// transforming into another. Like every arena buffer they carry
    /// capacity only: each chunk fully overwrites them before reading.
    pub fn round2_buffers(&mut self) -> (&mut Vec<u64>, &mut Vec<StdRng>, &mut Vec<f64>) {
        (&mut self.r2_seeds, &mut self.r2_streams, &mut self.r2_noise)
    }
}

thread_local! {
    static SHARD_SCRATCH: RefCell<ScratchArena> = RefCell::new(ScratchArena::new());
}

/// Runs `f` with this worker thread's [`ScratchArena`].
///
/// The parallel fan-outs hold one arena per rayon worker (the "shard"
/// granularity): each worker's inner candidate loop borrows the arena per
/// candidate, so after the buffers reach the working size the loop
/// performs zero heap allocations. On the main thread the arena persists
/// across engine calls, which is what makes the *warm* single-threaded
/// batch path allocation-free end to end.
pub fn with_shard_scratch<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    SHARD_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// The unified mutable state of one protocol run: privacy-budget accounting,
/// the message transcript, the RNG stream, and the run's [`ScratchArena`],
/// created with [`RoundContext::begin`] (lean accounting) or
/// [`RoundContext::begin_detailed`] and consumed by
/// [`RoundContext::finish`]. See the [module docs](self) for the two
/// accounting modes.
pub struct RoundContext<'r> {
    total: PrivacyBudget,
    budget: BudgetAccountant,
    transcript: Transcript,
    rng: &'r mut dyn RngCore,
    scratch: ScratchArena,
}

impl<'r> RoundContext<'r> {
    /// Validates `epsilon` and opens a fresh **lean** context around `rng`:
    /// aggregate transcript counters and budget totals only, zero
    /// allocations per recorded message or charge.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive, NaN, or infinite budgets.
    pub fn begin(epsilon: f64, rng: &'r mut dyn RngCore) -> Result<Self> {
        Self::begin_with(epsilon, rng, false)
    }

    /// [`RoundContext::begin`] in **detailed** mode: the per-message
    /// transcript log and the per-charge budget ledger are retained (with
    /// labels rendered) for tests and debugging. Estimates and every
    /// aggregate are byte-identical to a lean run.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive, NaN, or infinite budgets.
    pub fn begin_detailed(epsilon: f64, rng: &'r mut dyn RngCore) -> Result<Self> {
        Self::begin_with(epsilon, rng, true)
    }

    fn begin_with(epsilon: f64, rng: &'r mut dyn RngCore, detailed: bool) -> Result<Self> {
        let total = PrivacyBudget::new(epsilon)?;
        Ok(Self {
            total,
            budget: if detailed {
                BudgetAccountant::new(total)
            } else {
                BudgetAccountant::lean(total)
            },
            transcript: if detailed {
                Transcript::detailed()
            } else {
                Transcript::new()
            },
            rng,
            scratch: ScratchArena::new(),
        })
    }

    /// The total budget of the run.
    #[must_use]
    pub fn total(&self) -> PrivacyBudget {
        self.total
    }

    /// The total budget as a raw `ε` (what [`EstimateReport::epsilon`] records).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.total.value()
    }

    /// Charges `eps` against the run's budget.
    ///
    /// # Errors
    ///
    /// Returns an error if the charge would exceed the total budget.
    pub fn charge(
        &mut self,
        label: impl Into<Label>,
        eps: PrivacyBudget,
        composition: Composition,
    ) -> Result<()> {
        self.budget.charge(label, eps, composition)?;
        Ok(())
    }

    /// Records an arbitrary message in the transcript.
    pub fn record(
        &mut self,
        round: u32,
        direction: Direction,
        label: impl Into<Label>,
        bytes: usize,
    ) {
        self.transcript.record(round, direction, label, bytes);
    }

    /// Records the curator pushing a noisy edge list down to a client.
    pub fn record_download(&mut self, round: u32, label: impl Into<Label>, list: &NoisyNeighbors) {
        self.transcript
            .record(round, Direction::Download, label, list.message_bytes());
    }

    /// [`RoundContext::record_download`] for a packed-native noisy row —
    /// identical bytes (the wire format is the id list either way).
    pub fn record_download_packed(
        &mut self,
        round: u32,
        label: impl Into<Label>,
        list: &NoisyNeighborsPacked,
    ) {
        self.transcript
            .record(round, Direction::Download, label, list.message_bytes());
    }

    /// Records a client uploading one scalar (estimator value or noisy degree).
    pub fn record_scalar_upload(&mut self, round: u32, label: impl Into<Label>) {
        self.transcript.record(
            round,
            Direction::Upload,
            label,
            crate::protocol::SCALAR_BYTES,
        );
    }

    /// The run's RNG stream.
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }

    /// The run's scratch arena.
    pub fn scratch(&mut self) -> &mut ScratchArena {
        &mut self.scratch
    }

    /// Splits the context into its RNG stream and scratch arena, for steps
    /// that need both at once (e.g. perturbing into scratch buffers).
    pub fn rng_and_scratch(&mut self) -> (&mut dyn RngCore, &mut ScratchArena) {
        (self.rng, &mut self.scratch)
    }

    /// Draws a base seed for deterministic per-user fan-out streams.
    ///
    /// Combine with [`RoundContext::user_rng`]: the derived streams depend
    /// only on the draw and the vertex id, never on thread scheduling.
    pub fn next_stream_base(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The deterministic RNG stream of one participating user, per the
    /// `mix(seed, vertex id)` contract ([`crate::batch::user_stream_seed`]).
    #[must_use]
    pub fn user_rng(base: u64, vertex: VertexId) -> StdRng {
        StdRng::seed_from_u64(user_stream_seed(base, u64::from(vertex)))
    }

    /// Closes the run, yielding the accounting artifacts for the report.
    #[must_use]
    pub fn finish(self) -> (BudgetAccountant, Transcript) {
        (self.budget, self.transcript)
    }
}

/// A pairwise estimator that can run inside an engine environment.
///
/// This is the engine-aware face of [`CommonNeighborEstimator`]: the logic
/// lives in [`EngineEstimator::estimate_in`], and the legacy
/// [`CommonNeighborEstimator::estimate`] entry point of every algorithm is a
/// thin wrapper that runs the same code with an uncached environment —
/// guaranteeing the two paths cannot drift apart.
pub trait EngineEstimator: CommonNeighborEstimator {
    /// Runs the protocol in `env`, reading and writing run state via `ctx`.
    ///
    /// # Errors
    ///
    /// Same contract as [`CommonNeighborEstimator::estimate`].
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        ctx: RoundContext<'_>,
    ) -> Result<EstimateReport>;
}

/// Runs `est` once without a cache — the body of every legacy
/// [`CommonNeighborEstimator::estimate`] implementation. Lean accounting.
pub(crate) fn run_uncached(
    est: &dyn EngineEstimator,
    g: &BipartiteGraph,
    query: &Query,
    epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<EstimateReport> {
    let ctx = RoundContext::begin(epsilon, rng)?;
    est.estimate_in(ProtocolEnv::uncached(g), query, ctx)
}

/// Runs `est` once without a cache in **detailed** accounting mode: the
/// returned report retains the full per-message transcript log and
/// per-charge budget ledger. The estimate and every transcript/budget
/// aggregate are byte-identical to [`CommonNeighborEstimator::estimate`]
/// on the same seed.
///
/// # Errors
///
/// Same contract as [`CommonNeighborEstimator::estimate`].
pub fn run_detailed(
    est: &dyn EngineEstimator,
    g: &BipartiteGraph,
    query: &Query,
    epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<EstimateReport> {
    let ctx = RoundContext::begin_detailed(epsilon, rng)?;
    est.estimate_in(ProtocolEnv::uncached(g), query, ctx)
}

/// The persistent curator-side service facade: one graph, one warm
/// [`AdjacencyStore`], any number of queries — and, for engines that own
/// their graph, streaming mutation through
/// [`EstimationEngine::apply_updates`].
///
/// See the [module docs](self) for the cache lifecycle, the mutation &
/// invalidation lifecycle, the determinism contract, and the sharding
/// story.
pub struct EstimationEngine<'g> {
    graph: Cow<'g, BipartiteGraph>,
    store: AdjacencyStore,
    generation: u64,
}

impl<'g> EstimationEngine<'g> {
    /// Creates an engine borrowing `graph`, with a cold (empty, unbounded)
    /// adjacency cache.
    ///
    /// A borrowed engine can still [`apply_updates`](Self::apply_updates),
    /// but the first update clones the graph (copy-on-write); streaming
    /// services should construct with [`EstimationEngine::from_graph`]
    /// instead, which owns the graph and mutates it in place.
    #[must_use]
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        Self::build(Cow::Borrowed(graph), None)
    }

    /// [`EstimationEngine::new`] with a hard byte budget on the adjacency
    /// cache (see [`AdjacencyStore::with_byte_cap`]): for graphs too large
    /// to cache every dense vertex, the store stays within `max_bytes` and
    /// serves the rest via scratch packing, bit-identically.
    #[must_use]
    pub fn with_cache_budget(graph: &'g BipartiteGraph, max_bytes: usize) -> Self {
        Self::build(Cow::Borrowed(graph), Some(max_bytes))
    }

    /// Creates an engine that owns `graph`, so update batches splice the
    /// CSR arrays in place with no copy.
    #[must_use]
    pub fn from_graph(graph: BipartiteGraph) -> EstimationEngine<'static> {
        EstimationEngine::build(Cow::Owned(graph), None)
    }

    /// [`EstimationEngine::from_graph`] with a byte-capped adjacency cache.
    #[must_use]
    pub fn from_graph_with_cache_budget(
        graph: BipartiteGraph,
        max_bytes: usize,
    ) -> EstimationEngine<'static> {
        EstimationEngine::build(Cow::Owned(graph), Some(max_bytes))
    }

    /// Builds an engine from a loaded [`GraphSnapshot`]: the graph is
    /// adopted (epoch intact) and the snapshot's packed dense-vertex
    /// bitmaps are installed directly into the adjacency cache — the warm
    /// state a [`warm`](Self::warm)-ed text-built engine would reach, at
    /// the cost of a memcpy instead of a per-vertex re-pack. Estimates,
    /// transcripts, and budget ledgers are byte-identical to a text-built
    /// engine over the same graph (pinned in `tests/pinned_fingerprints.rs`).
    #[must_use]
    pub fn from_snapshot(snapshot: &GraphSnapshot) -> EstimationEngine<'static> {
        Self::adopt_snapshot(snapshot, None)
    }

    /// [`EstimationEngine::from_snapshot`] with a byte-capped adjacency
    /// cache: packed bitmaps are admitted in vertex-id order until the
    /// budget fills; the rest serve via the normal admission path,
    /// bit-identically.
    #[must_use]
    pub fn from_snapshot_with_cache_budget(
        snapshot: &GraphSnapshot,
        max_bytes: usize,
    ) -> EstimationEngine<'static> {
        Self::adopt_snapshot(snapshot, Some(max_bytes))
    }

    fn adopt_snapshot(snapshot: &GraphSnapshot, cap: Option<usize>) -> EstimationEngine<'static> {
        let mut engine = EstimationEngine::build(Cow::Owned(snapshot.graph().clone()), cap);
        for layer in [Layer::Upper, Layer::Lower] {
            let _ = engine
                .store
                .preload_bulk(engine.graph.as_ref(), layer, snapshot.packed(layer));
        }
        engine
    }

    fn build(graph: Cow<'g, BipartiteGraph>, cap: Option<usize>) -> Self {
        let store = match cap {
            None => AdjacencyStore::new(graph.as_ref()),
            Some(max_bytes) => AdjacencyStore::with_byte_cap(graph.as_ref(), max_bytes),
        };
        Self {
            graph,
            store,
            generation: 0,
        }
    }

    /// The graph this engine serves (in its current generation).
    #[must_use]
    pub fn graph(&self) -> &BipartiteGraph {
        self.graph.as_ref()
    }

    /// The engine's adjacency cache.
    #[must_use]
    pub fn store(&self) -> &AdjacencyStore {
        &self.store
    }

    /// The engine's generation: how many effective update batches have been
    /// applied since construction. Readers snapshot this before deriving
    /// state from query results (candidate sets, rankings) and re-check it
    /// with [`EstimationEngine::check_generation`] — or query through the
    /// `*_at` variants — to detect that updates intervened.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Verifies that a reader's generation snapshot is still current.
    ///
    /// # Errors
    ///
    /// Returns [`CneError::StaleGeneration`] when update batches have been
    /// applied since the snapshot was taken.
    pub fn check_generation(&self, observed: u64) -> Result<()> {
        if observed == self.generation {
            Ok(())
        } else {
            Err(CneError::StaleGeneration {
                observed,
                current: self.generation,
            })
        }
    }

    /// Applies a batch of streaming edge/vertex updates: splices the graph
    /// CSR in place ([`BipartiteGraph::apply_update_batch`]), precisely
    /// invalidates the touched vertices' cached bitmaps and the layer
    /// stats ([`AdjacencyStore::invalidate_applied`]), and — if anything
    /// changed — advances the engine generation.
    ///
    /// Validation is transactional: a rejected batch leaves graph, cache,
    /// and generation untouched. On an engine built over a *borrowed* graph
    /// the first effective update copies the graph (copy-on-write); build
    /// with [`EstimationEngine::from_graph`] to stream without copies.
    ///
    /// # Errors
    ///
    /// Same contract as [`BipartiteGraph::apply_update_batch`].
    pub fn apply_updates(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch> {
        // On a borrowed engine, validate *before* to_mut so a rejected
        // batch doesn't clone the graph just to fail. Owned engines skip
        // this — apply_update_batch performs the same check transactionally.
        if matches!(self.graph, Cow::Borrowed(_)) {
            batch.validate(self.graph.as_ref())?;
        }
        let graph = self.graph.to_mut();
        let applied = graph.apply_update_batch(batch)?;
        self.store.invalidate_applied(graph, &applied);
        if !applied.is_noop() {
            self.generation += 1;
        }
        Ok(applied)
    }

    /// Relieves adjacency-cache pressure on a byte-capped engine by
    /// evicting least-recently-used bitmaps (see
    /// [`AdjacencyStore::maintain`]). Also runs automatically at the end of
    /// every [`EstimationEngine::apply_updates`].
    pub fn maintain_cache(&mut self) {
        self.store.maintain();
    }

    /// Pre-builds the packed adjacency of every dense vertex on `layer`
    /// (the only bitmaps queries read — see [`AdjacencyStore::warm`]), so
    /// the first query is as fast as the thousandth. Returns `&self` so
    /// warming chains off construction.
    pub fn warm(&self, layer: Layer) -> &Self {
        self.store.warm(self.graph.as_ref(), layer);
        self
    }

    /// Pre-builds the packed adjacencies invalidated by an applied update
    /// batch (both layers' touched sets — see
    /// [`AdjacencyStore::warm_vertices`]). The double-buffered serving
    /// writer runs this on the offline buffer after a splice so readers
    /// never pay a cold bitmap rebuild on a freshly published snapshot.
    pub fn warm_touched(&self, applied: &AppliedBatch) -> &Self {
        for layer in [Layer::Upper, Layer::Lower] {
            self.store
                .warm_vertices(self.graph.as_ref(), layer, applied.touched(layer));
        }
        self
    }

    /// Degree statistics of `layer` (computed once, then cached).
    pub fn layer_stats(&self, layer: Layer) -> LayerStats {
        self.store.stats(self.graph.as_ref(), layer)
    }

    /// The cached environment engine-routed protocol runs execute in.
    #[must_use]
    pub fn env(&self) -> ProtocolEnv<'_> {
        ProtocolEnv::cached(self.graph.as_ref(), &self.store)
    }

    /// Runs `kind` with its default parameters on one query pair.
    ///
    /// # Errors
    ///
    /// Same contract as [`CommonNeighborEstimator::estimate`].
    pub fn estimate(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<EstimateReport> {
        match kind {
            AlgorithmKind::Naive => self.estimate_with(&Naive, query, epsilon, rng),
            AlgorithmKind::OneR => self.estimate_with(&OneR::default(), query, epsilon, rng),
            AlgorithmKind::MultiRSS => {
                self.estimate_with(&MultiRSS::default(), query, epsilon, rng)
            }
            AlgorithmKind::MultiRDSBasic => {
                self.estimate_with(&MultiRDSBasic::default(), query, epsilon, rng)
            }
            AlgorithmKind::MultiRDS => {
                self.estimate_with(&MultiRDS::default(), query, epsilon, rng)
            }
            AlgorithmKind::MultiRDSStar => self.estimate_with(&MultiRDSStar, query, epsilon, rng),
            AlgorithmKind::CentralDP => self.estimate_with(&CentralDP, query, epsilon, rng),
        }
    }

    /// Runs a configured estimator through the engine's warm cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`CommonNeighborEstimator::estimate`].
    pub fn estimate_with(
        &self,
        est: &dyn EngineEstimator,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<EstimateReport> {
        let ctx = RoundContext::begin(epsilon, rng)?;
        est.estimate_in(self.env(), query, ctx)
    }

    /// Runs the batch single-source protocol (default configuration) for one
    /// target against many candidates, reusing the warm cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn estimate_batch(
        &self,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<BatchReport> {
        self.estimate_batch_with(
            &BatchSingleSource::default(),
            layer,
            target,
            candidates,
            epsilon,
            rng,
        )
    }

    /// [`EstimationEngine::estimate_batch`] with a custom batch configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn estimate_batch_with(
        &self,
        algo: &BatchSingleSource,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<BatchReport> {
        algo.estimate_batch_in(self.env(), layer, target, candidates, epsilon, rng)
    }

    /// [`EstimationEngine::estimate`] guarded by a generation snapshot: the
    /// query only runs if no update batch has landed since the reader
    /// observed `generation` (typically when it picked the query pair).
    ///
    /// # Errors
    ///
    /// [`CneError::StaleGeneration`] when updates intervened; otherwise the
    /// contract of [`EstimationEngine::estimate`].
    pub fn estimate_at(
        &self,
        generation: u64,
        query: &Query,
        kind: AlgorithmKind,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<EstimateReport> {
        self.check_generation(generation)?;
        self.estimate(query, kind, epsilon, rng)
    }

    /// [`EstimationEngine::estimate_batch`] guarded by a generation
    /// snapshot (see [`EstimationEngine::estimate_at`]): the batch only
    /// runs if the candidate list was derived from the current graph.
    ///
    /// # Errors
    ///
    /// [`CneError::StaleGeneration`] when updates intervened; otherwise the
    /// contract of [`EstimationEngine::estimate_batch`].
    pub fn estimate_batch_at(
        &self,
        generation: u64,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<BatchReport> {
        self.check_generation(generation)?;
        self.estimate_batch(layer, target, candidates, epsilon, rng)
    }

    /// [`EstimationEngine::estimate_at`] with bounded stale-generation
    /// retry, for callers that track a generation themselves instead of
    /// going through [`ServingEngine`](crate::serving::ServingEngine).
    ///
    /// On [`CneError::StaleGeneration`] the caller's `generation` cursor is
    /// advanced to the current generation carried in the error and the
    /// query re-issued, up to `max_retries` times. The generation check
    /// runs *before* any protocol rounds, so a rejected attempt consumes no
    /// randomness from `rng` — retries leave the draw stream of the
    /// successful attempt byte-identical to a first-try success.
    ///
    /// On a single engine the first retry always succeeds (nothing mutates
    /// an `&self` engine between the error and the retry); the bound
    /// matters when the engine is re-resolved between attempts, e.g. a
    /// serving tier swapping buffers under the caller.
    ///
    /// # Errors
    ///
    /// [`CneError::StaleGeneration`] if the cursor is still stale after
    /// `max_retries` retries; otherwise the contract of
    /// [`EstimationEngine::estimate`].
    pub fn estimate_with_retry(
        &self,
        generation: &mut u64,
        query: &Query,
        kind: AlgorithmKind,
        epsilon: f64,
        rng: &mut dyn RngCore,
        max_retries: usize,
    ) -> Result<EstimateReport> {
        let mut retries = 0;
        loop {
            match self.estimate_at(*generation, query, kind, epsilon, rng) {
                Err(CneError::StaleGeneration { current, .. }) if retries < max_retries => {
                    *generation = current;
                    retries += 1;
                }
                outcome => return outcome,
            }
        }
    }

    /// [`EstimationEngine::estimate_batch_at`] with bounded
    /// stale-generation retry — the batch counterpart of
    /// [`EstimationEngine::estimate_with_retry`], with the same
    /// draw-stream guarantee (a rejected attempt consumes no randomness).
    ///
    /// # Errors
    ///
    /// [`CneError::StaleGeneration`] if still stale after `max_retries`
    /// retries; otherwise the contract of
    /// [`EstimationEngine::estimate_batch`].
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_batch_with_retry(
        &self,
        generation: &mut u64,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
        max_retries: usize,
    ) -> Result<BatchReport> {
        let mut retries = 0;
        loop {
            match self.estimate_batch_at(*generation, layer, target, candidates, epsilon, rng) {
                Err(CneError::StaleGeneration { current, .. }) if retries < max_retries => {
                    *generation = current;
                    retries += 1;
                }
                outcome => return outcome,
            }
        }
    }

    /// Sharded batch estimation: every target in `targets` is estimated
    /// against every candidate in `candidates` (minus itself), fanned out
    /// over rayon with one deterministic RNG stream per target shard.
    ///
    /// Each shard runs on the stream `mix(seed, target)`, so the report for
    /// target `t` is byte-identical to
    /// `engine.estimate_batch(layer, t, candidates_without_t, ..., &mut
    /// RoundContext::user_rng(seed, t))` — and therefore
    /// independent of thread count, shard order, and process placement.
    ///
    /// # Privacy composition across shards
    ///
    /// Each returned [`BatchReport`]'s ledger accounts **one** shard: per
    /// shard, every participant spends at most `epsilon`. Across shards the
    /// releases compose *sequentially* — a candidate screened against `T`
    /// targets releases `T` Laplace-noised estimators from its neighbor
    /// list and accrues up to `T · ε₂` (plus `ε₁` for each shard it is the
    /// target of). The cost is `ε` **per vertex per target**; callers own
    /// the cross-shard budget, exactly as if they had issued the `T` batch
    /// calls themselves.
    ///
    /// # Errors
    ///
    /// Rejects an empty or duplicate-containing target list, and propagates
    /// the first per-shard protocol error (unknown vertices, exhausted
    /// budget, a shard left with no candidates, ...).
    pub fn estimate_many_targets(
        &self,
        layer: Layer,
        targets: &[VertexId],
        candidates: &[VertexId],
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<BatchReport>> {
        self.estimate_many_targets_with(
            &BatchSingleSource::default(),
            layer,
            targets,
            candidates,
            epsilon,
            seed,
        )
    }

    /// [`EstimationEngine::estimate_many_targets`] with a custom batch
    /// configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`EstimationEngine::estimate_many_targets`].
    pub fn estimate_many_targets_with(
        &self,
        algo: &BatchSingleSource,
        layer: Layer,
        targets: &[VertexId],
        candidates: &[VertexId],
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<BatchReport>> {
        if targets.is_empty() {
            return Err(CneError::InvalidParameter {
                name: "targets",
                reason: "the target list must not be empty".into(),
            });
        }
        // Duplicate targets would re-release the duplicate's data on the
        // identical mix(seed, target) stream — reject them like the batch
        // protocol rejects duplicate candidates.
        let mut seen = targets.to_vec();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(CneError::InvalidParameter {
                name: "targets",
                reason: "target vertices must be distinct".into(),
            });
        }
        // The fused candidate-major implementation (see
        // [`BatchSingleSource::estimate_many_in`]): round 1 per target in
        // target order, then one parallel candidate-chunk pass intersecting
        // each candidate's adjacency — loaded once — against all noisy
        // target rows, with per-chunk batched stream seeding and keyed
        // Laplace draws. Byte-identical to the per-target reference above.
        algo.estimate_many_in(self.env(), layer, targets, candidates, epsilon, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Upper layer of 4 users over 400 items; u0 shares 8/4/0 items with
    /// u1/u2/u3 (the batch-module test graph).
    fn graph() -> BipartiteGraph {
        let edges = (0..10u32)
            .map(|v| (0u32, v))
            .chain((2..12u32).map(|v| (1u32, v)))
            .chain((6..16u32).map(|v| (2u32, v)))
            .chain((50..60u32).map(|v| (3u32, v)));
        BipartiteGraph::from_edges(4, 400, edges).unwrap()
    }

    #[test]
    fn store_is_lazy_and_warmable() {
        let g = graph();
        let store = AdjacencyStore::new(&g);
        assert_eq!(store.cached_count(Layer::Upper), 0);
        assert!(store.cached(Layer::Upper, 0).is_none());
        let packed = store.packed(&g, Layer::Upper, 0);
        assert_eq!(packed.len(), 10);
        assert_eq!(packed.universe(), 400);
        assert_eq!(store.cached_count(Layer::Upper), 1);
        assert!(store.cached(Layer::Upper, 0).is_some());
        // Every vertex here is sparse (degree 10 ≤ 2 · ⌈400/64⌉ = 14), so
        // warming packs nothing new: no query path would read those bitmaps.
        store.warm(&g, Layer::Upper);
        assert_eq!(store.cached_count(Layer::Upper), 1);
        assert_eq!(store.cached_count(Layer::Lower), 0);
    }

    #[test]
    fn warm_packs_exactly_the_dense_vertices() {
        // Universe 64 → 1 word → dense threshold is degree > 2. Vertices 0
        // and 1 qualify; vertex 2 (degree 2) stays un-packed.
        let edges = (0..40u32)
            .map(|v| (0u32, v))
            .chain((20..60u32).map(|v| (1u32, v)))
            .chain((0..2u32).map(|v| (2u32, v)));
        let g = BipartiteGraph::from_edges(3, 64, edges).unwrap();
        let store = AdjacencyStore::new(&g);
        store.warm(&g, Layer::Upper);
        assert_eq!(store.cached_count(Layer::Upper), 2);
        assert!(store.cached(Layer::Upper, 0).is_some());
        assert!(store.cached(Layer::Upper, 1).is_some());
        assert!(store.cached(Layer::Upper, 2).is_none());
    }

    #[test]
    fn store_packed_matches_true_adjacency() {
        let g = graph();
        let store = AdjacencyStore::new(&g);
        for v in 0..4u32 {
            let packed = store.packed(&g, Layer::Upper, v);
            assert_eq!(packed.to_sorted_ids(), g.neighbors(Layer::Upper, v));
        }
    }

    #[test]
    fn layer_stats_are_correct() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let stats = engine.layer_stats(Layer::Upper);
        assert_eq!(stats.vertices, 4);
        assert_eq!(stats.edges, 40);
        assert_eq!(stats.max_degree, 10);
        assert!((stats.mean_degree - 10.0).abs() < 1e-12);
        let lower = engine.layer_stats(Layer::Lower);
        assert_eq!(lower.vertices, 400);
        assert_eq!(lower.edges, 40);
    }

    #[test]
    fn env_intersection_matches_degree_aware_dispatch() {
        let g = graph();
        let store = AdjacencyStore::new(&g);
        let env_cached = ProtocolEnv::cached(&g, &store);
        let env_uncached = ProtocolEnv::uncached(&g);
        // A packed "other" set dense enough to exercise both branches.
        let other: Vec<u32> = (0..400).step_by(2).collect();
        let packed = PackedSet::from_sorted(&other, 400);
        for v in 0..4u32 {
            let a = env_cached.true_intersection_with(Layer::Upper, v, &packed);
            let b = env_uncached.true_intersection_with(Layer::Upper, v, &packed);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_kinds_run_through_the_engine() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let q = Query::new(Layer::Upper, 0, 1);
        let kinds = [
            AlgorithmKind::Naive,
            AlgorithmKind::OneR,
            AlgorithmKind::MultiRSS,
            AlgorithmKind::MultiRDSBasic,
            AlgorithmKind::MultiRDS,
            AlgorithmKind::MultiRDSStar,
            AlgorithmKind::CentralDP,
        ];
        for kind in kinds {
            let mut rng = StdRng::seed_from_u64(3);
            let report = engine.estimate(&q, kind, 2.0, &mut rng).unwrap();
            assert_eq!(report.algorithm, kind);
            assert!(report.estimate.is_finite());
            assert!(report.budget.consumed() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn engine_matches_legacy_for_every_kind() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let q = Query::new(Layer::Upper, 0, 1);
        let legacy: Vec<Box<dyn CommonNeighborEstimator>> = vec![
            Box::new(Naive),
            Box::new(OneR::default()),
            Box::new(MultiRSS::default()),
            Box::new(MultiRDSBasic::default()),
            Box::new(MultiRDS::default()),
            Box::new(MultiRDSStar),
            Box::new(CentralDP),
        ];
        for est in &legacy {
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            let a = est.estimate(&g, &q, 2.0, &mut rng_a).unwrap();
            let b = engine.estimate(&q, est.kind(), 2.0, &mut rng_b).unwrap();
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "{}: engine must be byte-identical to the legacy path",
                est.kind()
            );
            assert_eq!(a.transcript, b.transcript);
        }
    }

    #[test]
    fn engine_batch_matches_legacy_batch() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let algo = BatchSingleSource::default();
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let legacy = algo
            .estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng_a)
            .unwrap();
        let cached = engine
            .estimate_batch(Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng_b)
            .unwrap();
        let bits = |r: &BatchReport| -> Vec<u64> {
            r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
        };
        assert_eq!(bits(&legacy), bits(&cached));
        assert_eq!(legacy.transcript, cached.transcript);
    }

    #[test]
    fn many_targets_matches_per_target_batches() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let seed = 97u64;
        let reports = engine
            .estimate_many_targets(Layer::Upper, &[0, 1], &[0, 1, 2, 3], 2.0, seed)
            .unwrap();
        assert_eq!(reports.len(), 2);
        for report in &reports {
            // Each shard drops its own target from the candidate list.
            assert_eq!(report.estimates.len(), 3);
            assert!(report
                .estimates
                .iter()
                .all(|e| e.candidate != report.target));
            let mut rng = StdRng::seed_from_u64(user_stream_seed(seed, u64::from(report.target)));
            let shard: Vec<u32> = [0u32, 1, 2, 3]
                .into_iter()
                .filter(|&w| w != report.target)
                .collect();
            let direct = engine
                .estimate_batch(Layer::Upper, report.target, &shard, 2.0, &mut rng)
                .unwrap();
            let bits = |r: &BatchReport| -> Vec<u64> {
                r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
            };
            assert_eq!(bits(report), bits(&direct));
        }
    }

    #[test]
    fn many_targets_rejects_bad_target_lists() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        assert!(engine
            .estimate_many_targets(Layer::Upper, &[], &[1], 2.0, 1)
            .is_err());
        assert!(engine
            .estimate_many_targets(Layer::Upper, &[0, 0], &[1], 2.0, 1)
            .is_err());
        // A shard left with no candidates is a per-shard protocol error.
        assert!(engine
            .estimate_many_targets(Layer::Upper, &[0], &[0], 2.0, 1)
            .is_err());
    }

    #[test]
    fn engine_queries_populate_the_cache_only_for_dense_vertices() {
        // In this small graph every vertex is sparse relative to the packed
        // word count, so the probe branch runs and nothing is cached.
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        engine
            .estimate_batch(Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
            .unwrap();
        assert_eq!(engine.store().cached_count(Layer::Upper), 0);
    }

    /// Universe 64 → 1 packed word (8 bytes) per upper bitmap; all three
    /// upper vertices are dense (degree > 2).
    fn dense_small_graph() -> BipartiteGraph {
        let edges = (0..40u32)
            .map(|v| (0u32, v))
            .chain((20..60u32).map(|v| (1u32, v)))
            .chain((0..30u32).map(|v| (2u32, v)));
        BipartiteGraph::from_edges(3, 64, edges).unwrap()
    }

    #[test]
    fn byte_capped_store_declines_and_falls_back() {
        let g = dense_small_graph();
        // Room for exactly two 8-byte upper bitmaps.
        let store = AdjacencyStore::with_byte_cap(&g, 16);
        assert_eq!(store.byte_cap(), Some(16));
        assert!(store.try_packed(&g, Layer::Upper, 0).is_some());
        assert!(store.try_packed(&g, Layer::Upper, 1).is_some());
        assert_eq!(store.bytes_used(), 16);
        // The third admission is declined, and the budget holds.
        assert!(store.try_packed(&g, Layer::Upper, 2).is_none());
        assert_eq!(store.bytes_used(), 16);
        assert_eq!(store.cached_count(Layer::Upper), 2);
        // Declined vertices still answer correctly through the env fallback.
        let env = ProtocolEnv::cached(&g, &store);
        let other = PackedSet::from_sorted(&(0..64).collect::<Vec<u32>>(), 64);
        assert_eq!(env.true_intersection_with(Layer::Upper, 2, &other), 30);
        assert!(
            store.packed(&g, Layer::Upper, 0).len() == 40,
            "packed() still works for admitted slots"
        );
    }

    #[test]
    fn maintain_evicts_cold_entries_after_pressure() {
        let g = dense_small_graph();
        let mut store = AdjacencyStore::with_byte_cap(&g, 16);
        let _ = store.try_packed(&g, Layer::Upper, 0);
        let _ = store.try_packed(&g, Layer::Upper, 1);
        // Touch 1 again so vertex 0 is the cold one.
        let _ = store.try_packed(&g, Layer::Upper, 1);
        assert!(store.try_packed(&g, Layer::Upper, 2).is_none());
        store.maintain();
        // A quarter of the 16-byte budget must be free: the coldest entry
        // (vertex 0) was evicted, the hot one kept.
        assert!(store.bytes_used() <= 12);
        assert!(store.cached(Layer::Upper, 0).is_none());
        assert!(store.cached(Layer::Upper, 1).is_some());
        // The pressured vertex can now be admitted.
        assert!(store.try_packed(&g, Layer::Upper, 2).is_some());
        assert!(store.bytes_used() <= 16);
        // Without new pressure, maintain is a no-op.
        let before = store.bytes_used();
        store.maintain();
        assert_eq!(store.bytes_used(), before);
    }

    #[test]
    fn invalidation_is_precise_for_edge_updates() {
        let g0 = dense_small_graph();
        let mut engine = EstimationEngine::from_graph(g0);
        engine.warm(Layer::Upper);
        assert_eq!(engine.store().cached_count(Layer::Upper), 3);
        assert_eq!(engine.store().entry_epoch(Layer::Upper, 0), Some(0));
        let mut batch = bigraph::UpdateBatch::new();
        batch.add_edge(1, 0).remove_edge(2, 0);
        let applied = engine.apply_updates(&batch).unwrap();
        assert_eq!(applied.touched_upper, vec![1, 2]);
        // Vertex 0's bitmap survived; 1 and 2 were dropped.
        assert!(engine.store().cached(Layer::Upper, 0).is_some());
        assert!(engine.store().cached(Layer::Upper, 1).is_none());
        assert!(engine.store().cached(Layer::Upper, 2).is_none());
        assert_eq!(engine.generation(), 1);
        assert_eq!(engine.store().epoch(), engine.graph().epoch());
        // Rebuilt entries carry the new epoch tag.
        engine.warm(Layer::Upper);
        assert_eq!(engine.store().entry_epoch(Layer::Upper, 0), Some(0));
        assert_eq!(engine.store().entry_epoch(Layer::Upper, 1), Some(1));
        // And the rebuilt bitmap reflects the update.
        assert!(engine.store().cached(Layer::Upper, 1).unwrap().contains(0));
        assert!(!engine.store().cached(Layer::Upper, 2).unwrap().contains(0));
    }

    #[test]
    fn vertex_addition_drops_opposite_layer_bitmaps() {
        let mut engine = EstimationEngine::from_graph(dense_small_graph());
        engine.warm(Layer::Upper);
        assert_eq!(engine.store().cached_count(Layer::Upper), 3);
        let mut batch = bigraph::UpdateBatch::new();
        // Growing the lower layer grows every upper bitmap's universe.
        batch.add_vertex(Layer::Lower).add_edge(0, 64);
        engine.apply_updates(&batch).unwrap();
        assert_eq!(engine.store().cached_count(Layer::Upper), 0);
        assert_eq!(engine.store().bytes_used(), 0);
        assert_eq!(engine.graph().n_lower(), 65);
        // Rebuilt bitmaps range over the new universe.
        engine.warm(Layer::Upper);
        assert_eq!(
            engine.store().cached(Layer::Upper, 0).unwrap().universe(),
            65
        );
    }

    #[test]
    fn same_layer_touched_entries_drop_even_when_that_layer_grew() {
        // Regression: a batch that both adds a vertex on a layer *and*
        // touches edges of that layer's existing vertices must drop the
        // touched entries — the coarse opposite-layer drop for the grown
        // universe must not swallow the same-layer precise invalidation.
        let mut engine = EstimationEngine::from_graph(dense_small_graph());
        engine.warm(Layer::Upper);
        assert_eq!(engine.store().cached_count(Layer::Upper), 3);
        let mut batch = bigraph::UpdateBatch::new();
        batch.add_vertex(Layer::Upper).add_edge(0, 63);
        engine.apply_updates(&batch).unwrap();
        assert!(
            engine.store().cached(Layer::Upper, 0).is_none(),
            "touched upper vertex must be invalidated despite the upper-layer growth"
        );
        // And the rebuilt bitmap sees the new edge.
        engine.warm(Layer::Upper);
        assert!(engine.store().cached(Layer::Upper, 0).unwrap().contains(63));
        // Lower bitmaps (universe grew: 3 -> 4 upper vertices) were dropped.
        assert_eq!(engine.store().cached_count(Layer::Lower), 0);
    }

    #[test]
    fn capped_store_serves_single_source_queries_without_panicking() {
        // Regression: MultiR-SS/DS route dense sources through
        // single_source_value_env, which must fall back (not panic) when a
        // byte-capped store declines to cache the source.
        let g = dense_small_graph();
        let capped = EstimationEngine::with_cache_budget(&g, 8); // one bitmap
        let unbounded = EstimationEngine::new(&g);
        capped.warm(Layer::Upper); // fills the budget with vertex 0
        assert_eq!(capped.store().cached_count(Layer::Upper), 1);
        let q = Query::new(Layer::Upper, 1, 2); // both dense, both declined
        for kind in [
            AlgorithmKind::MultiRSS,
            AlgorithmKind::MultiRDS,
            AlgorithmKind::MultiRDSBasic,
        ] {
            let mut rng_a = StdRng::seed_from_u64(17);
            let mut rng_b = StdRng::seed_from_u64(17);
            let a = capped.estimate(&q, kind, 2.0, &mut rng_a).unwrap();
            let b = unbounded.estimate(&q, kind, 2.0, &mut rng_b).unwrap();
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits(), "{kind}");
        }
        assert!(capped.store().bytes_used() <= 8);
    }

    #[test]
    fn apply_updates_checks_generation_and_rejects_atomically() {
        let mut engine = EstimationEngine::from_graph(dense_small_graph());
        let gen0 = engine.generation();
        engine.check_generation(gen0).unwrap();
        // A rejected batch changes nothing.
        let mut bad = bigraph::UpdateBatch::new();
        bad.add_edge(0, 1).add_edge(99, 0);
        assert!(engine.apply_updates(&bad).is_err());
        assert_eq!(engine.generation(), gen0);
        engine.check_generation(gen0).unwrap();
        // A no-op batch does not bump the generation either.
        let mut noop = bigraph::UpdateBatch::new();
        noop.add_edge(0, 1); // already present
        assert!(engine.apply_updates(&noop).unwrap().is_noop());
        assert_eq!(engine.generation(), gen0);
        // An effective batch does, and stale readers get told.
        let mut good = bigraph::UpdateBatch::new();
        good.add_edge(0, 63);
        engine.apply_updates(&good).unwrap();
        assert_eq!(engine.generation(), gen0 + 1);
        let err = engine.check_generation(gen0).unwrap_err();
        assert!(matches!(
            err,
            CneError::StaleGeneration {
                observed: 0,
                current: 1
            }
        ));
        let q = Query::new(Layer::Upper, 0, 1);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(engine
            .estimate_at(gen0, &q, AlgorithmKind::OneR, 2.0, &mut rng)
            .is_err());
        assert!(engine
            .estimate_at(gen0 + 1, &q, AlgorithmKind::OneR, 2.0, &mut rng)
            .is_ok());
        assert!(engine
            .estimate_batch_at(gen0, Layer::Upper, 0, &[1, 2], 2.0, &mut rng)
            .is_err());
    }

    #[test]
    fn borrowed_engine_updates_copy_on_write() {
        let g = dense_small_graph();
        let mut engine = EstimationEngine::new(&g);
        let mut batch = bigraph::UpdateBatch::new();
        batch.add_edge(0, 63);
        engine.apply_updates(&batch).unwrap();
        // The engine's copy moved on; the caller's graph is untouched.
        assert!(engine.graph().has_edge(0, 63));
        assert!(!g.has_edge(0, 63));
        assert_eq!(engine.generation(), 1);
    }

    #[test]
    fn dense_vertices_hit_the_cache() {
        // 3 upper vertices over a 64-item layer (1 packed word): degree > 2
        // crosses the dense threshold, so the engine packs and caches.
        let edges = (0..40u32)
            .map(|v| (0u32, v))
            .chain((20..60u32).map(|v| (1u32, v)))
            .chain((0..30u32).map(|v| (2u32, v)));
        let g = BipartiteGraph::from_edges(3, 64, edges).unwrap();
        let engine = EstimationEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let report = engine
            .estimate_batch(Layer::Upper, 0, &[1, 2], 4.0, &mut rng)
            .unwrap();
        assert_eq!(report.estimates.len(), 2);
        // Both candidates are dense, and so is the round-1 target (the
        // packed perturbation ORs its cached bitmap in word-wise), so all
        // three bitmaps are now warm.
        assert_eq!(engine.store().cached_count(Layer::Upper), 3);
        // And a second run reuses them (still 3, not 6).
        let mut rng = StdRng::seed_from_u64(10);
        engine
            .estimate_batch(Layer::Upper, 0, &[1, 2], 4.0, &mut rng)
            .unwrap();
        assert_eq!(engine.store().cached_count(Layer::Upper), 3);
    }
}

//! The persistent curator-side estimation engine.
//!
//! The per-algorithm modules implement *one* protocol run each. Serving
//! millions of repeated queries needs three things they cannot provide on
//! their own, and this module supplies all three:
//!
//! * [`AdjacencyStore`] — a lazily built, read-only cache of bit-packed
//!   ([`bigraph::bitset::PackedSet`]) true adjacencies, one bitmap per
//!   vertex and layer, plus per-layer degree statistics. Packing a vertex's
//!   neighbor list costs `O(degree + universe/64)`; the store pays that cost
//!   once per vertex per graph instead of once per query, so the word-parallel
//!   popcount intersections in the single-source hot loop start from warm
//!   bitmaps.
//! * [`RoundContext`] — the unified per-run state (privacy-budget accountant,
//!   byte-accurate message transcript, the RNG stream, and a reusable
//!   [`ScratchArena`]) that every protocol round reads and writes. It
//!   replaces the `&mut BudgetAccountant, &mut Transcript, &mut dyn RngCore`
//!   parameter trains the protocol modules used to thread through every
//!   helper.
//! * [`EstimationEngine`] — the facade applications talk to: build it once
//!   per graph, then call [`EstimationEngine::estimate`] /
//!   [`EstimationEngine::estimate_batch`] /
//!   [`EstimationEngine::estimate_many_targets`] as often as needed. Every
//!   call shares the same warm [`AdjacencyStore`].
//!
//! # Lean vs detailed accounting
//!
//! A [`RoundContext`] opened with [`RoundContext::begin`] records **lean**
//! accounting artifacts: the transcript keeps only the fixed-size
//! [`ldp::transcript::TranscriptStats`] counters and the budget accountant
//! keeps only its consumption totals, so recording a message or charging
//! the budget is pure arithmetic — no allocation, no label rendering. All
//! aggregate accessors (total/per-round/per-direction bytes, rounds,
//! consumed budget) are exact in this mode; only the per-message /
//! per-charge logs are absent. Open the context with
//! [`RoundContext::begin_detailed`] (or run through
//! [`run_detailed`] / `BatchSingleSource::estimate_batch_detailed`) to
//! additionally retain those logs for tests and debugging. Estimates and
//! aggregates are byte-identical across the two modes — the mode changes
//! *what is retained*, never what is computed.
//!
//! # Scratch-arena lifecycle
//!
//! The per-candidate hot loops used to allocate once per candidate (packing
//! an adjacency into a fresh bitmap, building label strings). A
//! [`ScratchArena`] bundles the reusable buffers — randomized-response
//! perturbation scratch, packed-word scratch for pack-then-popcount
//! intersections, and candidate id-list staging:
//!
//! * every [`RoundContext`] owns one arena for the sequential protocol
//!   steps of its run (buffers grow on first use, then are reused across
//!   rounds of the same run);
//! * the rayon fan-outs ([`crate::batch::BatchSingleSource`] round 2,
//!   [`EstimationEngine::estimate_many_targets`]) use one **thread-local**
//!   arena per worker, accessed through [`with_shard_scratch`], so each
//!   shard's inner candidate loop performs zero heap allocations once its
//!   buffers have grown to the working size (regression-tested with a
//!   counting allocator in `tests/alloc_regression.rs`).
//!
//! Arenas hold no protocol state — only capacity — so reuse can never
//! change a result: every scratch-based kernel counts the same set the
//! allocating kernel counted.
//!
//! # Cache lifecycle
//!
//! The store is immutable-after-init per slot: each vertex's bitmap is built
//! on first use (from any thread — slots are [`std::sync::OnceLock`]s) and
//! never invalidated, which is sound because [`bigraph::BipartiteGraph`] is
//! immutable. A store must only ever be used with the graph it was created
//! for; [`EstimationEngine`] enforces that pairing by construction. Sparse
//! vertices never get packed at all — the degree-aware dispatch only consults
//! the cache for vertices dense enough that popcount beats per-id probing —
//! so memory stays proportional to the number of *dense* vertices actually
//! queried. Call [`EstimationEngine::warm`] (or [`AdjacencyStore::warm`]) to
//! pre-build a layer's *dense* vertices up front (sparse ones are skipped —
//! no query path ever reads their bitmaps), e.g. before latency-sensitive
//! serving.
//!
//! # Determinism contract
//!
//! Engine results are a pure function of `(graph, query, epsilon, seed)`:
//!
//! * cached and uncached paths are **byte-identical** — the cache only
//!   changes *how* an intersection is counted, never the count, so every
//!   downstream floating-point operation sees identical inputs;
//! * parallel fan-outs ([`EstimationEngine::estimate_batch`] round 2,
//!   [`EstimationEngine::estimate_many_targets`]) derive one RNG stream per
//!   participating user as `mix(seed, vertex id)`
//!   ([`crate::batch::user_stream_seed`]) — never from thread scheduling —
//!   so output is byte-identical at any `RAYON_NUM_THREADS`.
//!
//! Both properties are enforced by regression tests
//! (`tests/engine_determinism.rs`).
//!
//! # Sharding story
//!
//! [`EstimationEngine::estimate_many_targets`] fans `targets × candidates`
//! over rayon: each target shard runs the whole batch protocol on its own
//! `mix(seed, target)` stream, and inside a shard every candidate estimator
//! runs on its own `mix(base, candidate)` stream. Because no stream depends
//! on placement, the same contract extends across processes or machines —
//! shard the target list however is convenient and concatenate the reports.

use crate::batch::{user_stream_seed, BatchReport, BatchSingleSource};
use crate::central::CentralDP;
use crate::double_source::{MultiRDS, MultiRDSBasic, MultiRDSStar};
use crate::error::{CneError, Result};
use crate::estimate::{AlgorithmKind, EstimateReport};
use crate::estimator::CommonNeighborEstimator;
use crate::naive::Naive;
use crate::one_round::OneR;
use crate::protocol::Query;
use crate::single_source::MultiRSS;
use bigraph::bitset::{PackScratch, PackedSet};
use bigraph::{BipartiteGraph, Layer, VertexId};
use ldp::budget::{BudgetAccountant, Composition, PrivacyBudget};
use ldp::noisy_graph::NoisyNeighbors;
use ldp::transcript::{Direction, Label, Transcript};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Aggregate degree statistics of one graph layer, computed once and cached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Number of vertices on the layer.
    pub vertices: usize,
    /// Number of edges incident to the layer (= `|E|` for either layer).
    pub edges: usize,
    /// Largest vertex degree on the layer.
    pub max_degree: usize,
    /// Mean vertex degree on the layer (0 for an empty layer).
    pub mean_degree: f64,
}

/// A lazily built, shareable cache of bit-packed true adjacencies.
///
/// One slot per vertex and layer; each slot is initialized at most once (on
/// first use, from whichever thread gets there first) and then shared
/// read-only. See the [module docs](self) for the cache lifecycle.
#[derive(Debug)]
pub struct AdjacencyStore {
    upper: Vec<OnceLock<PackedSet>>,
    lower: Vec<OnceLock<PackedSet>>,
    upper_stats: OnceLock<LayerStats>,
    lower_stats: OnceLock<LayerStats>,
}

impl AdjacencyStore {
    /// Creates an empty store sized for `g`. No bitmaps are built yet.
    #[must_use]
    pub fn new(g: &BipartiteGraph) -> Self {
        let mut upper = Vec::new();
        let mut lower = Vec::new();
        upper.resize_with(g.n_upper(), OnceLock::new);
        lower.resize_with(g.n_lower(), OnceLock::new);
        Self {
            upper,
            lower,
            upper_stats: OnceLock::new(),
            lower_stats: OnceLock::new(),
        }
    }

    fn slots(&self, layer: Layer) -> &[OnceLock<PackedSet>] {
        match layer {
            Layer::Upper => &self.upper,
            Layer::Lower => &self.lower,
        }
    }

    /// The packed true adjacency of vertex `v` on `layer`, built on first use.
    ///
    /// The bitmap ranges over the opposite layer (`universe =
    /// g.layer_size(layer.opposite())`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `layer`, or if `g` is not the graph
    /// this store was created for (detected via a layer-size mismatch).
    #[must_use]
    pub fn packed(&self, g: &BipartiteGraph, layer: Layer, v: VertexId) -> &PackedSet {
        let slots = self.slots(layer);
        assert_eq!(
            slots.len(),
            g.layer_size(layer),
            "AdjacencyStore used with a graph it was not built for"
        );
        slots[v as usize].get_or_init(|| {
            PackedSet::from_sorted(g.neighbors(layer, v), g.layer_size(layer.opposite()))
        })
    }

    /// The bitmap for `v` if it has already been built, without building it.
    #[must_use]
    pub fn cached(&self, layer: Layer, v: VertexId) -> Option<&PackedSet> {
        self.slots(layer).get(v as usize).and_then(OnceLock::get)
    }

    /// How many vertices of `layer` currently have a built bitmap.
    #[must_use]
    pub fn cached_count(&self, layer: Layer) -> usize {
        self.slots(layer)
            .iter()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Pre-builds the bitmaps of every *dense* vertex on `layer` — those the
    /// degree-aware dispatch ([`ProtocolEnv::true_intersection_with`]) will
    /// actually read. Sparse vertices are skipped: their queries take the
    /// probe path, so packing them would only burn memory
    /// (`⌈universe/64⌉ · 8` bytes each) that no query ever touches.
    pub fn warm(&self, g: &BipartiteGraph, layer: Layer) {
        let words = g.layer_size(layer.opposite()).div_ceil(64);
        for v in 0..g.layer_size(layer) as VertexId {
            if g.degree(layer, v) > 2 * words {
                let _ = self.packed(g, layer, v);
            }
        }
    }

    /// Degree statistics of `layer`, computed on first use and cached.
    pub fn stats(&self, g: &BipartiteGraph, layer: Layer) -> LayerStats {
        let cell = match layer {
            Layer::Upper => &self.upper_stats,
            Layer::Lower => &self.lower_stats,
        };
        *cell.get_or_init(|| {
            let vertices = g.layer_size(layer);
            let mut edges = 0usize;
            let mut max_degree = 0usize;
            for v in 0..vertices as VertexId {
                let d = g.degree(layer, v);
                edges += d;
                max_degree = max_degree.max(d);
            }
            let mean_degree = if vertices == 0 {
                0.0
            } else {
                edges as f64 / vertices as f64
            };
            LayerStats {
                vertices,
                edges,
                max_degree,
                mean_degree,
            }
        })
    }
}

/// The read-only environment a protocol run executes in: the graph plus an
/// optional warm [`AdjacencyStore`].
///
/// `Copy` so it can be captured by value in parallel closures. With
/// `store: None` every intersection falls back to the pack-per-call strategy
/// of [`bigraph::bitset::intersection_size_degree_aware`] — the legacy
/// uncached path, byte-identical to the cached one.
#[derive(Clone, Copy)]
pub struct ProtocolEnv<'a> {
    /// The graph both vertex- and curator-side steps read.
    pub graph: &'a BipartiteGraph,
    /// The shared adjacency cache, if the run goes through an engine.
    pub store: Option<&'a AdjacencyStore>,
}

impl<'a> ProtocolEnv<'a> {
    /// An environment with no adjacency cache (the legacy one-shot path).
    #[must_use]
    pub fn uncached(graph: &'a BipartiteGraph) -> Self {
        Self { graph, store: None }
    }

    /// An environment backed by a warm adjacency cache.
    #[must_use]
    pub fn cached(graph: &'a BipartiteGraph, store: &'a AdjacencyStore) -> Self {
        Self {
            graph,
            store: Some(store),
        }
    }

    /// Counts `|N(v) ∩ other|` for the *true* neighborhood of `v`, using the
    /// cheapest available strategy.
    ///
    /// Sparse `v` probes `other` per neighbor id; dense `v` uses a
    /// word-parallel popcount against the cached bitmap when a store is
    /// available (packing on the fly otherwise). All strategies count the
    /// same set, so the result — and everything derived from it — is
    /// identical with and without a store. The density threshold matches
    /// [`bigraph::bitset::intersection_size_degree_aware`] exactly.
    #[must_use]
    pub fn true_intersection_with(&self, layer: Layer, v: VertexId, other: &PackedSet) -> u64 {
        let neighbors = self.graph.neighbors(layer, v);
        if let Some(store) = self.store {
            let words = other.universe().div_ceil(64);
            if neighbors.len() > 2 * words {
                return store.packed(self.graph, layer, v).intersection_size(other);
            }
        }
        bigraph::bitset::intersection_size_degree_aware(neighbors, other)
    }

    /// [`ProtocolEnv::true_intersection_with`] with a reusable pack buffer:
    /// when the dense fallback would pack `v`'s adjacency into a fresh
    /// bitmap (no store, or the store declined), it packs into `scratch`
    /// instead. Same strategy thresholds, same count — bit-identical.
    #[must_use]
    pub fn true_intersection_with_scratch(
        &self,
        layer: Layer,
        v: VertexId,
        other: &PackedSet,
        scratch: &mut ScratchArena,
    ) -> u64 {
        let neighbors = self.graph.neighbors(layer, v);
        if let Some(store) = self.store {
            let words = other.universe().div_ceil(64);
            if neighbors.len() > 2 * words {
                return store.packed(self.graph, layer, v).intersection_size(other);
            }
        }
        bigraph::bitset::intersection_size_degree_aware_into(neighbors, other, &mut scratch.pack)
    }
}

/// Reusable per-run / per-shard working buffers (see the
/// [module docs](self) for the lifecycle).
///
/// An arena holds only capacity, never protocol state: every kernel that
/// borrows a buffer fully overwrites it before reading, so reuse cannot
/// change any result.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Packed-word scratch for pack-then-popcount intersections.
    pack: PackScratch,
    /// Candidate id-list staging (duplicate checks, shard candidate lists).
    ids: Vec<VertexId>,
    /// Randomized-response perturbation scratch (kept survivors).
    rr_kept: Vec<VertexId>,
    /// Randomized-response perturbation scratch (0 → 1 flips).
    rr_flipped: Vec<VertexId>,
}

impl ScratchArena {
    /// Creates an empty arena; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The packed-word scratch buffer.
    pub fn pack_scratch(&mut self) -> &mut PackScratch {
        &mut self.pack
    }

    /// Takes the id-list buffer out of the arena (cleared), so it can be
    /// used while the arena is borrowed elsewhere — e.g. a shard candidate
    /// list that must stay alive across a nested protocol run. Return it
    /// with [`ScratchArena::put_ids`] to keep the capacity warm.
    #[must_use]
    pub fn take_ids(&mut self) -> Vec<VertexId> {
        let mut ids = std::mem::take(&mut self.ids);
        ids.clear();
        ids
    }

    /// Returns a buffer taken with [`ScratchArena::take_ids`].
    pub fn put_ids(&mut self, ids: Vec<VertexId>) {
        // Keep whichever buffer has more capacity warm.
        if ids.capacity() > self.ids.capacity() {
            self.ids = ids;
        }
    }

    /// The two randomized-response perturbation buffers.
    pub fn rr_buffers(&mut self) -> (&mut Vec<VertexId>, &mut Vec<VertexId>) {
        (&mut self.rr_kept, &mut self.rr_flipped)
    }
}

thread_local! {
    static SHARD_SCRATCH: RefCell<ScratchArena> = RefCell::new(ScratchArena::new());
}

/// Runs `f` with this worker thread's [`ScratchArena`].
///
/// The parallel fan-outs hold one arena per rayon worker (the "shard"
/// granularity): each worker's inner candidate loop borrows the arena per
/// candidate, so after the buffers reach the working size the loop
/// performs zero heap allocations. On the main thread the arena persists
/// across engine calls, which is what makes the *warm* single-threaded
/// batch path allocation-free end to end.
pub fn with_shard_scratch<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    SHARD_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// The unified mutable state of one protocol run: privacy-budget accounting,
/// the message transcript, the RNG stream, and the run's [`ScratchArena`],
/// created with [`RoundContext::begin`] (lean accounting) or
/// [`RoundContext::begin_detailed`] and consumed by
/// [`RoundContext::finish`]. See the [module docs](self) for the two
/// accounting modes.
pub struct RoundContext<'r> {
    total: PrivacyBudget,
    budget: BudgetAccountant,
    transcript: Transcript,
    rng: &'r mut dyn RngCore,
    scratch: ScratchArena,
}

impl<'r> RoundContext<'r> {
    /// Validates `epsilon` and opens a fresh **lean** context around `rng`:
    /// aggregate transcript counters and budget totals only, zero
    /// allocations per recorded message or charge.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive, NaN, or infinite budgets.
    pub fn begin(epsilon: f64, rng: &'r mut dyn RngCore) -> Result<Self> {
        Self::begin_with(epsilon, rng, false)
    }

    /// [`RoundContext::begin`] in **detailed** mode: the per-message
    /// transcript log and the per-charge budget ledger are retained (with
    /// labels rendered) for tests and debugging. Estimates and every
    /// aggregate are byte-identical to a lean run.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive, NaN, or infinite budgets.
    pub fn begin_detailed(epsilon: f64, rng: &'r mut dyn RngCore) -> Result<Self> {
        Self::begin_with(epsilon, rng, true)
    }

    fn begin_with(epsilon: f64, rng: &'r mut dyn RngCore, detailed: bool) -> Result<Self> {
        let total = PrivacyBudget::new(epsilon)?;
        Ok(Self {
            total,
            budget: if detailed {
                BudgetAccountant::new(total)
            } else {
                BudgetAccountant::lean(total)
            },
            transcript: if detailed {
                Transcript::detailed()
            } else {
                Transcript::new()
            },
            rng,
            scratch: ScratchArena::new(),
        })
    }

    /// The total budget of the run.
    #[must_use]
    pub fn total(&self) -> PrivacyBudget {
        self.total
    }

    /// The total budget as a raw `ε` (what [`EstimateReport::epsilon`] records).
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.total.value()
    }

    /// Charges `eps` against the run's budget.
    ///
    /// # Errors
    ///
    /// Returns an error if the charge would exceed the total budget.
    pub fn charge(
        &mut self,
        label: impl Into<Label>,
        eps: PrivacyBudget,
        composition: Composition,
    ) -> Result<()> {
        self.budget.charge(label, eps, composition)?;
        Ok(())
    }

    /// Records an arbitrary message in the transcript.
    pub fn record(
        &mut self,
        round: u32,
        direction: Direction,
        label: impl Into<Label>,
        bytes: usize,
    ) {
        self.transcript.record(round, direction, label, bytes);
    }

    /// Records the curator pushing a noisy edge list down to a client.
    pub fn record_download(&mut self, round: u32, label: impl Into<Label>, list: &NoisyNeighbors) {
        self.transcript
            .record(round, Direction::Download, label, list.message_bytes());
    }

    /// Records a client uploading one scalar (estimator value or noisy degree).
    pub fn record_scalar_upload(&mut self, round: u32, label: impl Into<Label>) {
        self.transcript.record(
            round,
            Direction::Upload,
            label,
            crate::protocol::SCALAR_BYTES,
        );
    }

    /// The run's RNG stream.
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }

    /// The run's scratch arena.
    pub fn scratch(&mut self) -> &mut ScratchArena {
        &mut self.scratch
    }

    /// Splits the context into its RNG stream and scratch arena, for steps
    /// that need both at once (e.g. perturbing into scratch buffers).
    pub fn rng_and_scratch(&mut self) -> (&mut dyn RngCore, &mut ScratchArena) {
        (self.rng, &mut self.scratch)
    }

    /// Draws a base seed for deterministic per-user fan-out streams.
    ///
    /// Combine with [`RoundContext::user_rng`]: the derived streams depend
    /// only on the draw and the vertex id, never on thread scheduling.
    pub fn next_stream_base(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The deterministic RNG stream of one participating user, per the
    /// `mix(seed, vertex id)` contract ([`crate::batch::user_stream_seed`]).
    #[must_use]
    pub fn user_rng(base: u64, vertex: VertexId) -> StdRng {
        StdRng::seed_from_u64(user_stream_seed(base, u64::from(vertex)))
    }

    /// Closes the run, yielding the accounting artifacts for the report.
    #[must_use]
    pub fn finish(self) -> (BudgetAccountant, Transcript) {
        (self.budget, self.transcript)
    }
}

/// A pairwise estimator that can run inside an engine environment.
///
/// This is the engine-aware face of [`CommonNeighborEstimator`]: the logic
/// lives in [`EngineEstimator::estimate_in`], and the legacy
/// [`CommonNeighborEstimator::estimate`] entry point of every algorithm is a
/// thin wrapper that runs the same code with an uncached environment —
/// guaranteeing the two paths cannot drift apart.
pub trait EngineEstimator: CommonNeighborEstimator {
    /// Runs the protocol in `env`, reading and writing run state via `ctx`.
    ///
    /// # Errors
    ///
    /// Same contract as [`CommonNeighborEstimator::estimate`].
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        ctx: RoundContext<'_>,
    ) -> Result<EstimateReport>;
}

/// Runs `est` once without a cache — the body of every legacy
/// [`CommonNeighborEstimator::estimate`] implementation. Lean accounting.
pub(crate) fn run_uncached(
    est: &dyn EngineEstimator,
    g: &BipartiteGraph,
    query: &Query,
    epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<EstimateReport> {
    let ctx = RoundContext::begin(epsilon, rng)?;
    est.estimate_in(ProtocolEnv::uncached(g), query, ctx)
}

/// Runs `est` once without a cache in **detailed** accounting mode: the
/// returned report retains the full per-message transcript log and
/// per-charge budget ledger. The estimate and every transcript/budget
/// aggregate are byte-identical to [`CommonNeighborEstimator::estimate`]
/// on the same seed.
///
/// # Errors
///
/// Same contract as [`CommonNeighborEstimator::estimate`].
pub fn run_detailed(
    est: &dyn EngineEstimator,
    g: &BipartiteGraph,
    query: &Query,
    epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<EstimateReport> {
    let ctx = RoundContext::begin_detailed(epsilon, rng)?;
    est.estimate_in(ProtocolEnv::uncached(g), query, ctx)
}

/// The persistent curator-side service facade: one graph, one warm
/// [`AdjacencyStore`], any number of queries.
///
/// See the [module docs](self) for the cache lifecycle, the determinism
/// contract, and the sharding story.
pub struct EstimationEngine<'g> {
    graph: &'g BipartiteGraph,
    store: AdjacencyStore,
}

impl<'g> EstimationEngine<'g> {
    /// Creates an engine for `graph` with a cold (empty) adjacency cache.
    #[must_use]
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        Self {
            graph,
            store: AdjacencyStore::new(graph),
        }
    }

    /// The graph this engine serves.
    #[must_use]
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// The engine's adjacency cache.
    #[must_use]
    pub fn store(&self) -> &AdjacencyStore {
        &self.store
    }

    /// Pre-builds the packed adjacency of every dense vertex on `layer`
    /// (the only bitmaps queries read — see [`AdjacencyStore::warm`]), so
    /// the first query is as fast as the thousandth. Returns `&self` so
    /// warming chains off construction.
    pub fn warm(&self, layer: Layer) -> &Self {
        self.store.warm(self.graph, layer);
        self
    }

    /// Degree statistics of `layer` (computed once, then cached).
    pub fn layer_stats(&self, layer: Layer) -> LayerStats {
        self.store.stats(self.graph, layer)
    }

    /// The cached environment engine-routed protocol runs execute in.
    #[must_use]
    pub fn env(&self) -> ProtocolEnv<'_> {
        ProtocolEnv::cached(self.graph, &self.store)
    }

    /// Runs `kind` with its default parameters on one query pair.
    ///
    /// # Errors
    ///
    /// Same contract as [`CommonNeighborEstimator::estimate`].
    pub fn estimate(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<EstimateReport> {
        match kind {
            AlgorithmKind::Naive => self.estimate_with(&Naive, query, epsilon, rng),
            AlgorithmKind::OneR => self.estimate_with(&OneR::default(), query, epsilon, rng),
            AlgorithmKind::MultiRSS => {
                self.estimate_with(&MultiRSS::default(), query, epsilon, rng)
            }
            AlgorithmKind::MultiRDSBasic => {
                self.estimate_with(&MultiRDSBasic::default(), query, epsilon, rng)
            }
            AlgorithmKind::MultiRDS => {
                self.estimate_with(&MultiRDS::default(), query, epsilon, rng)
            }
            AlgorithmKind::MultiRDSStar => self.estimate_with(&MultiRDSStar, query, epsilon, rng),
            AlgorithmKind::CentralDP => self.estimate_with(&CentralDP, query, epsilon, rng),
        }
    }

    /// Runs a configured estimator through the engine's warm cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`CommonNeighborEstimator::estimate`].
    pub fn estimate_with(
        &self,
        est: &dyn EngineEstimator,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<EstimateReport> {
        let ctx = RoundContext::begin(epsilon, rng)?;
        est.estimate_in(self.env(), query, ctx)
    }

    /// Runs the batch single-source protocol (default configuration) for one
    /// target against many candidates, reusing the warm cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn estimate_batch(
        &self,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<BatchReport> {
        self.estimate_batch_with(
            &BatchSingleSource::default(),
            layer,
            target,
            candidates,
            epsilon,
            rng,
        )
    }

    /// [`EstimationEngine::estimate_batch`] with a custom batch configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`BatchSingleSource::estimate_batch`].
    pub fn estimate_batch_with(
        &self,
        algo: &BatchSingleSource,
        layer: Layer,
        target: VertexId,
        candidates: &[VertexId],
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<BatchReport> {
        algo.estimate_batch_in(self.env(), layer, target, candidates, epsilon, rng)
    }

    /// Sharded batch estimation: every target in `targets` is estimated
    /// against every candidate in `candidates` (minus itself), fanned out
    /// over rayon with one deterministic RNG stream per target shard.
    ///
    /// Each shard runs on the stream `mix(seed, target)`, so the report for
    /// target `t` is byte-identical to
    /// `engine.estimate_batch(layer, t, candidates_without_t, ..., &mut
    /// RoundContext::user_rng(seed, t))` — and therefore
    /// independent of thread count, shard order, and process placement.
    ///
    /// # Privacy composition across shards
    ///
    /// Each returned [`BatchReport`]'s ledger accounts **one** shard: per
    /// shard, every participant spends at most `epsilon`. Across shards the
    /// releases compose *sequentially* — a candidate screened against `T`
    /// targets releases `T` Laplace-noised estimators from its neighbor
    /// list and accrues up to `T · ε₂` (plus `ε₁` for each shard it is the
    /// target of). The cost is `ε` **per vertex per target**; callers own
    /// the cross-shard budget, exactly as if they had issued the `T` batch
    /// calls themselves.
    ///
    /// # Errors
    ///
    /// Rejects an empty or duplicate-containing target list, and propagates
    /// the first per-shard protocol error (unknown vertices, exhausted
    /// budget, a shard left with no candidates, ...).
    pub fn estimate_many_targets(
        &self,
        layer: Layer,
        targets: &[VertexId],
        candidates: &[VertexId],
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<BatchReport>> {
        self.estimate_many_targets_with(
            &BatchSingleSource::default(),
            layer,
            targets,
            candidates,
            epsilon,
            seed,
        )
    }

    /// [`EstimationEngine::estimate_many_targets`] with a custom batch
    /// configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`EstimationEngine::estimate_many_targets`].
    pub fn estimate_many_targets_with(
        &self,
        algo: &BatchSingleSource,
        layer: Layer,
        targets: &[VertexId],
        candidates: &[VertexId],
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<BatchReport>> {
        if targets.is_empty() {
            return Err(CneError::InvalidParameter {
                name: "targets",
                reason: "the target list must not be empty".into(),
            });
        }
        // Duplicate targets would re-release the duplicate's data on the
        // identical mix(seed, target) stream — reject them like the batch
        // protocol rejects duplicate candidates.
        let mut seen = targets.to_vec();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(CneError::InvalidParameter {
                name: "targets",
                reason: "target vertices must be distinct".into(),
            });
        }
        let results: Vec<Result<BatchReport>> = targets
            .par_iter()
            .map(|&t| {
                // Stage the shard's candidate list in the worker's scratch
                // arena; `take`/`put` keeps the buffer alive across the
                // nested batch run (which borrows the same arena per
                // candidate) without cloning or re-allocating per target.
                let mut shard = with_shard_scratch(ScratchArena::take_ids);
                shard.extend(candidates.iter().copied().filter(|&w| w != t));
                let mut rng = RoundContext::user_rng(seed, t);
                let report =
                    algo.estimate_batch_in(self.env(), layer, t, &shard, epsilon, &mut rng);
                with_shard_scratch(|arena| arena.put_ids(shard));
                report
            })
            .collect();
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Upper layer of 4 users over 400 items; u0 shares 8/4/0 items with
    /// u1/u2/u3 (the batch-module test graph).
    fn graph() -> BipartiteGraph {
        let edges = (0..10u32)
            .map(|v| (0u32, v))
            .chain((2..12u32).map(|v| (1u32, v)))
            .chain((6..16u32).map(|v| (2u32, v)))
            .chain((50..60u32).map(|v| (3u32, v)));
        BipartiteGraph::from_edges(4, 400, edges).unwrap()
    }

    #[test]
    fn store_is_lazy_and_warmable() {
        let g = graph();
        let store = AdjacencyStore::new(&g);
        assert_eq!(store.cached_count(Layer::Upper), 0);
        assert!(store.cached(Layer::Upper, 0).is_none());
        let packed = store.packed(&g, Layer::Upper, 0);
        assert_eq!(packed.len(), 10);
        assert_eq!(packed.universe(), 400);
        assert_eq!(store.cached_count(Layer::Upper), 1);
        assert!(store.cached(Layer::Upper, 0).is_some());
        // Every vertex here is sparse (degree 10 ≤ 2 · ⌈400/64⌉ = 14), so
        // warming packs nothing new: no query path would read those bitmaps.
        store.warm(&g, Layer::Upper);
        assert_eq!(store.cached_count(Layer::Upper), 1);
        assert_eq!(store.cached_count(Layer::Lower), 0);
    }

    #[test]
    fn warm_packs_exactly_the_dense_vertices() {
        // Universe 64 → 1 word → dense threshold is degree > 2. Vertices 0
        // and 1 qualify; vertex 2 (degree 2) stays un-packed.
        let edges = (0..40u32)
            .map(|v| (0u32, v))
            .chain((20..60u32).map(|v| (1u32, v)))
            .chain((0..2u32).map(|v| (2u32, v)));
        let g = BipartiteGraph::from_edges(3, 64, edges).unwrap();
        let store = AdjacencyStore::new(&g);
        store.warm(&g, Layer::Upper);
        assert_eq!(store.cached_count(Layer::Upper), 2);
        assert!(store.cached(Layer::Upper, 0).is_some());
        assert!(store.cached(Layer::Upper, 1).is_some());
        assert!(store.cached(Layer::Upper, 2).is_none());
    }

    #[test]
    fn store_packed_matches_true_adjacency() {
        let g = graph();
        let store = AdjacencyStore::new(&g);
        for v in 0..4u32 {
            let packed = store.packed(&g, Layer::Upper, v);
            assert_eq!(packed.to_sorted_ids(), g.neighbors(Layer::Upper, v));
        }
    }

    #[test]
    fn layer_stats_are_correct() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let stats = engine.layer_stats(Layer::Upper);
        assert_eq!(stats.vertices, 4);
        assert_eq!(stats.edges, 40);
        assert_eq!(stats.max_degree, 10);
        assert!((stats.mean_degree - 10.0).abs() < 1e-12);
        let lower = engine.layer_stats(Layer::Lower);
        assert_eq!(lower.vertices, 400);
        assert_eq!(lower.edges, 40);
    }

    #[test]
    fn env_intersection_matches_degree_aware_dispatch() {
        let g = graph();
        let store = AdjacencyStore::new(&g);
        let env_cached = ProtocolEnv::cached(&g, &store);
        let env_uncached = ProtocolEnv::uncached(&g);
        // A packed "other" set dense enough to exercise both branches.
        let other: Vec<u32> = (0..400).step_by(2).collect();
        let packed = PackedSet::from_sorted(&other, 400);
        for v in 0..4u32 {
            let a = env_cached.true_intersection_with(Layer::Upper, v, &packed);
            let b = env_uncached.true_intersection_with(Layer::Upper, v, &packed);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_kinds_run_through_the_engine() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let q = Query::new(Layer::Upper, 0, 1);
        let kinds = [
            AlgorithmKind::Naive,
            AlgorithmKind::OneR,
            AlgorithmKind::MultiRSS,
            AlgorithmKind::MultiRDSBasic,
            AlgorithmKind::MultiRDS,
            AlgorithmKind::MultiRDSStar,
            AlgorithmKind::CentralDP,
        ];
        for kind in kinds {
            let mut rng = StdRng::seed_from_u64(3);
            let report = engine.estimate(&q, kind, 2.0, &mut rng).unwrap();
            assert_eq!(report.algorithm, kind);
            assert!(report.estimate.is_finite());
            assert!(report.budget.consumed() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn engine_matches_legacy_for_every_kind() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let q = Query::new(Layer::Upper, 0, 1);
        let legacy: Vec<Box<dyn CommonNeighborEstimator>> = vec![
            Box::new(Naive),
            Box::new(OneR::default()),
            Box::new(MultiRSS::default()),
            Box::new(MultiRDSBasic::default()),
            Box::new(MultiRDS::default()),
            Box::new(MultiRDSStar),
            Box::new(CentralDP),
        ];
        for est in &legacy {
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            let a = est.estimate(&g, &q, 2.0, &mut rng_a).unwrap();
            let b = engine.estimate(&q, est.kind(), 2.0, &mut rng_b).unwrap();
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "{}: engine must be byte-identical to the legacy path",
                est.kind()
            );
            assert_eq!(a.transcript, b.transcript);
        }
    }

    #[test]
    fn engine_batch_matches_legacy_batch() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let algo = BatchSingleSource::default();
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let legacy = algo
            .estimate_batch(&g, Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng_a)
            .unwrap();
        let cached = engine
            .estimate_batch(Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng_b)
            .unwrap();
        let bits = |r: &BatchReport| -> Vec<u64> {
            r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
        };
        assert_eq!(bits(&legacy), bits(&cached));
        assert_eq!(legacy.transcript, cached.transcript);
    }

    #[test]
    fn many_targets_matches_per_target_batches() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let seed = 97u64;
        let reports = engine
            .estimate_many_targets(Layer::Upper, &[0, 1], &[0, 1, 2, 3], 2.0, seed)
            .unwrap();
        assert_eq!(reports.len(), 2);
        for report in &reports {
            // Each shard drops its own target from the candidate list.
            assert_eq!(report.estimates.len(), 3);
            assert!(report
                .estimates
                .iter()
                .all(|e| e.candidate != report.target));
            let mut rng = StdRng::seed_from_u64(user_stream_seed(seed, u64::from(report.target)));
            let shard: Vec<u32> = [0u32, 1, 2, 3]
                .into_iter()
                .filter(|&w| w != report.target)
                .collect();
            let direct = engine
                .estimate_batch(Layer::Upper, report.target, &shard, 2.0, &mut rng)
                .unwrap();
            let bits = |r: &BatchReport| -> Vec<u64> {
                r.estimates.iter().map(|e| e.estimate.to_bits()).collect()
            };
            assert_eq!(bits(report), bits(&direct));
        }
    }

    #[test]
    fn many_targets_rejects_bad_target_lists() {
        let g = graph();
        let engine = EstimationEngine::new(&g);
        assert!(engine
            .estimate_many_targets(Layer::Upper, &[], &[1], 2.0, 1)
            .is_err());
        assert!(engine
            .estimate_many_targets(Layer::Upper, &[0, 0], &[1], 2.0, 1)
            .is_err());
        // A shard left with no candidates is a per-shard protocol error.
        assert!(engine
            .estimate_many_targets(Layer::Upper, &[0], &[0], 2.0, 1)
            .is_err());
    }

    #[test]
    fn engine_queries_populate_the_cache_only_for_dense_vertices() {
        // In this small graph every vertex is sparse relative to the packed
        // word count, so the probe branch runs and nothing is cached.
        let g = graph();
        let engine = EstimationEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        engine
            .estimate_batch(Layer::Upper, 0, &[1, 2, 3], 2.0, &mut rng)
            .unwrap();
        assert_eq!(engine.store().cached_count(Layer::Upper), 0);
    }

    #[test]
    fn dense_vertices_hit_the_cache() {
        // 3 upper vertices over a 64-item layer (1 packed word): degree > 2
        // crosses the dense threshold, so the engine packs and caches.
        let edges = (0..40u32)
            .map(|v| (0u32, v))
            .chain((20..60u32).map(|v| (1u32, v)))
            .chain((0..30u32).map(|v| (2u32, v)));
        let g = BipartiteGraph::from_edges(3, 64, edges).unwrap();
        let engine = EstimationEngine::new(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let report = engine
            .estimate_batch(Layer::Upper, 0, &[1, 2], 4.0, &mut rng)
            .unwrap();
        assert_eq!(report.estimates.len(), 2);
        // Both candidates are dense, so both bitmaps are now warm.
        assert_eq!(engine.store().cached_count(Layer::Upper), 2);
        // And a second run reuses them (still 2, not 4).
        let mut rng = StdRng::seed_from_u64(10);
        engine
            .estimate_batch(Layer::Upper, 0, &[1, 2], 4.0, &mut rng)
            .unwrap();
        assert_eq!(engine.store().cached_count(Layer::Upper), 2);
    }
}

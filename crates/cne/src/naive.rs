//! The `Naive` baseline (Algorithm 1): count common neighbors on the noisy graph.

use crate::engine::{EngineEstimator, ProtocolEnv, RoundContext};
use crate::error::Result;
use crate::estimate::{AlgorithmKind, ChosenParameters, EstimateReport};
use crate::estimator::CommonNeighborEstimator;
use crate::protocol::{randomized_response_round_packed, Query};
use bigraph::BipartiteGraph;
use ldp::noisy_graph::NoisyGraphViewPacked;
use serde::{Deserialize, Serialize};

/// The naive estimator: both query vertices perturb their neighbor lists with
/// randomized response using the full budget `ε`, and the curator simply
/// intersects the two noisy lists.
///
/// Because the noisy graph is much denser than the original (every absent edge
/// materialises with probability `p = 1/(1+e^ε)`), the count is severely
/// biased upwards — the motivation for every other algorithm in this crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Naive;

impl EngineEstimator for Naive {
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        mut ctx: RoundContext<'_>,
    ) -> Result<EstimateReport> {
        query.validate(env.graph)?;

        // Vertex side: u and w perturb their neighbor lists with the full ε
        // (packed-native rows — see `randomized_response_round_packed`).
        let round = randomized_response_round_packed(
            env,
            query.layer,
            &[query.u, query.w],
            ctx.total(),
            1,
            &mut ctx,
        )?;
        let mut noisy = round.noisy.into_iter();
        let noisy_u = noisy.next().expect("two lists requested");
        let noisy_w = noisy.next().expect("two lists requested");

        // Curator side: intersect the noisy rows word-parallel.
        let view = NoisyGraphViewPacked::new(noisy_u, noisy_w);
        let estimate = view.noisy_intersection_size() as f64;

        let epsilon = ctx.epsilon();
        let (budget, transcript) = ctx.finish();
        Ok(EstimateReport {
            algorithm: self.kind(),
            estimate,
            epsilon,
            budget,
            transcript,
            rounds: 1,
            parameters: ChosenParameters::default(),
        })
    }
}

impl CommonNeighborEstimator for Naive {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Naive
    }

    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport> {
        crate::engine::run_uncached(self, g, query, epsilon, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A sparse graph where u and w share a handful of neighbors among many
    /// candidates — the regime where Naive overcounts badly.
    fn sparse_graph() -> (BipartiteGraph, Query) {
        let n_lower = 2_000u32;
        let edges = (0..5u32)
            .map(|v| (0u32, v))
            .chain((3..8u32).map(|v| (1u32, v)));
        let g = BipartiteGraph::from_edges(2, n_lower as usize, edges).unwrap();
        (g, Query::new(Layer::Upper, 0, 1))
    }

    #[test]
    fn naive_overcounts_on_sparse_graphs() {
        let (g, q) = sparse_graph();
        let truth = q.exact_count(&g).unwrap() as f64; // = 2
        let mut rng = StdRng::seed_from_u64(7);
        let runs = 60;
        let mean: f64 = (0..runs)
            .map(|_| Naive.estimate(&g, &q, 1.0, &mut rng).unwrap().estimate)
            .sum::<f64>()
            / runs as f64;
        // Expected intersection of two noisy lists ≈ n1·p² plus a small
        // signal term — with n1=2000 and ε=1 this is ≈ 28, far above 2.
        assert!(
            mean > truth * 3.0,
            "Naive should substantially overcount: mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn report_metadata() {
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let report = Naive.estimate(&g, &q, 2.0, &mut rng).unwrap();
        assert_eq!(report.algorithm, AlgorithmKind::Naive);
        assert_eq!(report.rounds, 1);
        assert!(report.estimate >= 0.0);
        assert!((report.budget.consumed() - 2.0).abs() < 1e-9);
        // Both query vertices uploaded noisy edges.
        assert_eq!(report.transcript.message_count(), 2);
        assert!(report.communication_bytes() > 0);
        assert_eq!(report.parameters, ChosenParameters::default());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (g, _) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Naive
            .estimate(&g, &Query::new(Layer::Upper, 0, 0), 1.0, &mut rng)
            .is_err());
        assert!(Naive
            .estimate(&g, &Query::new(Layer::Upper, 0, 5), 1.0, &mut rng)
            .is_err());
        assert!(Naive
            .estimate(&g, &Query::new(Layer::Upper, 0, 1), 0.0, &mut rng)
            .is_err());
        assert!(Naive
            .estimate(&g, &Query::new(Layer::Upper, 0, 1), -1.0, &mut rng)
            .is_err());
    }

    #[test]
    fn lower_layer_queries_work() {
        let g = BipartiteGraph::from_edges(
            50,
            4,
            (0..20u32).map(|u| (u, 0)).chain((0..20u32).map(|u| (u, 1))),
        )
        .unwrap();
        let q = Query::new(Layer::Lower, 0, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let report = Naive.estimate(&g, &q, 2.0, &mut rng).unwrap();
        assert!(report.estimate >= 0.0);
    }

    #[test]
    fn large_epsilon_recovers_truth() {
        let (g, q) = sparse_graph();
        let truth = q.exact_count(&g).unwrap() as f64;
        let mut rng = StdRng::seed_from_u64(11);
        let report = Naive.estimate(&g, &q, 30.0, &mut rng).unwrap();
        assert_eq!(report.estimate, truth);
    }
}

//! Closed-form expected L2 losses (variances) of all estimators.
//!
//! These are the formulas of the paper's Theorems 1, 4, 6 and 8 (Table 3).
//! They serve three purposes:
//!
//! 1. the MultiR-DS optimiser minimises [`double_source_l2`] over `(ε₁, α)`,
//! 2. the Fig. 5 experiment plots them directly,
//! 3. the test-suite checks that *empirical* variances of the implemented
//!    estimators match these predictions — a strong end-to-end correctness
//!    check of both the math and the implementation.

use serde::{Deserialize, Serialize};

/// The flip probability `p = 1 / (1 + e^ε)` used by randomized response.
#[must_use]
pub fn flip_probability(epsilon: f64) -> f64 {
    1.0 / (1.0 + epsilon.exp())
}

/// Variance of the unbiased edge estimator `φ`: `p(1−p)/(1−2p)²` (Equation 1).
#[must_use]
pub fn phi_variance(epsilon: f64) -> f64 {
    let p = flip_probability(epsilon);
    p * (1.0 - p) / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p))
}

/// Upper bound on the expected L2 loss of the `Naive` estimator
/// (Theorem 1): `n₁² (1−p)⁴ = n₁² e⁴ᵉ / (1+eᵉ)⁴`.
///
/// `Naive` is biased, so this is a bound on `E[(f̃₁ − C2)²]`, dominated by
/// `E[f̃₁²]`; the paper states it in O-notation and we expose the same leading
/// term for the Table 3 comparison.
#[must_use]
pub fn naive_l2_bound(opposite_size: usize, epsilon: f64) -> f64 {
    let p = flip_probability(epsilon);
    let n1 = opposite_size as f64;
    (n1 * (1.0 - p) * (1.0 - p)).powi(2)
}

/// Exact expected L2 loss (variance) of the `OneR` estimator (Theorem 4):
/// `p²(1−p)²/(1−2p)⁴ · n₁ + p(1−p)/(1−2p)² · (d_u + d_w)`.
#[must_use]
pub fn one_round_l2(opposite_size: usize, degree_u: f64, degree_w: f64, epsilon: f64) -> f64 {
    let p = flip_probability(epsilon);
    let q = 1.0 - 2.0 * p;
    let n1 = opposite_size as f64;
    p * p * (1.0 - p) * (1.0 - p) / q.powi(4) * n1 + p * (1.0 - p) / (q * q) * (degree_u + degree_w)
}

/// Variance contributed by the Laplace noise of a single-source estimator:
/// `2(1−p)² / ((1−2p)² ε₂²)` where `p` is the flip probability of the RR
/// round with budget `ε₁`.
#[must_use]
pub fn single_source_laplace_variance(epsilon1: f64, epsilon2: f64) -> f64 {
    let p = flip_probability(epsilon1);
    let q = 1.0 - 2.0 * p;
    2.0 * (1.0 - p) * (1.0 - p) / (q * q * epsilon2 * epsilon2)
}

/// Exact expected L2 loss of the single-source estimator `f̃_u` (Theorem 6):
/// `p(1−p)/(1−2p)² · d_u + 2(1−p)²/((1−2p)² ε₂²)`.
#[must_use]
pub fn single_source_l2(degree_u: f64, epsilon1: f64, epsilon2: f64) -> f64 {
    phi_variance(epsilon1) * degree_u + single_source_laplace_variance(epsilon1, epsilon2)
}

/// Exact expected L2 loss of the double-source estimator
/// `f* = α f̃_u + (1−α) f̃_w` (Theorem 8):
/// `p(1−p)/(1−2p)² (α² d_u + (1−α)² d_w) + 2(1−p)²/((1−2p)² ε₂²) (α² + (1−α)²)`.
#[must_use]
pub fn double_source_l2(
    degree_u: f64,
    degree_w: f64,
    alpha: f64,
    epsilon1: f64,
    epsilon2: f64,
) -> f64 {
    let a2 = alpha * alpha;
    let b2 = (1.0 - alpha) * (1.0 - alpha);
    phi_variance(epsilon1) * (a2 * degree_u + b2 * degree_w)
        + single_source_laplace_variance(epsilon1, epsilon2) * (a2 + b2)
}

/// Expected L2 loss of the central-model baseline: the variance of
/// `Lap(1/ε)`, i.e. `2/ε²`.
#[must_use]
pub fn central_dp_l2(epsilon: f64) -> f64 {
    2.0 / (epsilon * epsilon)
}

/// Chebyshev bound: for an unbiased estimator with variance `var`, the
/// probability of deviating from the truth by more than `t` is at most
/// `var / t²` (clamped to 1).
#[must_use]
pub fn chebyshev_bound(variance: f64, t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    (variance / (t * t)).min(1.0)
}

/// A row of the paper's Table 3 (asymptotic / exact loss summary) evaluated
/// for a concrete configuration; used by the Table 3 reproduction bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossSummaryRow {
    /// Opposite-layer size `n₁`.
    pub opposite_size: usize,
    /// Degree of `u`.
    pub degree_u: f64,
    /// Degree of `w`.
    pub degree_w: f64,
    /// Total budget `ε`.
    pub epsilon: f64,
    /// Naive loss bound.
    pub naive: f64,
    /// OneR exact loss.
    pub one_round: f64,
    /// MultiR-SS exact loss with an even ε split.
    pub multi_r_ss: f64,
    /// MultiR-DS loss at the optimised `(ε₁, α)`.
    pub multi_r_ds: f64,
    /// CentralDP loss.
    pub central: f64,
}

impl LossSummaryRow {
    /// Evaluates every formula for one configuration. The MultiR-DS entry uses
    /// the optimiser from [`crate::optimizer`].
    #[must_use]
    pub fn evaluate(opposite_size: usize, degree_u: f64, degree_w: f64, epsilon: f64) -> Self {
        let half = epsilon / 2.0;
        let opt = crate::optimizer::optimize_double_source(degree_u, degree_w, epsilon);
        Self {
            opposite_size,
            degree_u,
            degree_w,
            epsilon,
            naive: naive_l2_bound(opposite_size, epsilon),
            one_round: one_round_l2(opposite_size, degree_u, degree_w, epsilon),
            multi_r_ss: single_source_l2(degree_u, half, half),
            multi_r_ds: opt.loss,
            central: central_dp_l2(epsilon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_probability_range() {
        for eps in [0.1, 1.0, 2.0, 5.0] {
            let p = flip_probability(eps);
            assert!(p > 0.0 && p < 0.5, "eps {eps} -> p {p}");
        }
        assert!(flip_probability(1.0) > flip_probability(2.0));
    }

    #[test]
    fn phi_variance_matches_mechanism() {
        use ldp::budget::PrivacyBudget;
        use ldp::randomized_response::RandomizedResponse;
        for eps in [0.5, 1.0, 2.0, 3.0] {
            let rr = RandomizedResponse::new(PrivacyBudget::new(eps).unwrap());
            assert!((phi_variance(eps) - rr.edge_estimate_variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn one_round_loss_grows_linearly_in_n1() {
        let a = one_round_l2(1_000, 10.0, 10.0, 2.0);
        let b = one_round_l2(2_000, 10.0, 10.0, 2.0);
        let per_vertex = phi_variance(2.0).powi(2) / 1.0; // p²(1-p)²/(1-2p)^4
        let _ = per_vertex;
        assert!(b > a);
        // The n1-dependent part doubles exactly.
        let degree_part = phi_variance(2.0) * 20.0;
        assert!(((b - degree_part) / (a - degree_part) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn naive_bound_dominates_one_round() {
        // For moderately sized graphs the Naive bound (quadratic in n1) must
        // exceed the OneR loss (linear in n1).
        assert!(naive_l2_bound(10_000, 2.0) > one_round_l2(10_000, 50.0, 50.0, 2.0));
    }

    #[test]
    fn single_source_independent_of_n1_and_monotone_in_degree() {
        let l_small = single_source_l2(5.0, 1.0, 1.0);
        let l_large = single_source_l2(500.0, 1.0, 1.0);
        assert!(l_large > l_small);
        // Loss decreases when more budget is available for both rounds.
        assert!(single_source_l2(10.0, 2.0, 2.0) < single_source_l2(10.0, 1.0, 1.0));
    }

    #[test]
    fn double_source_reduces_to_single_source_at_alpha_one() {
        let du = 7.0;
        let dw = 100.0;
        let e1 = 0.8;
        let e2 = 1.2;
        let at_one = double_source_l2(du, dw, 1.0, e1, e2);
        assert!((at_one - single_source_l2(du, e1, e2)).abs() < 1e-12);
        let at_zero = double_source_l2(du, dw, 0.0, e1, e2);
        assert!((at_zero - single_source_l2(dw, e1, e2)).abs() < 1e-12);
    }

    #[test]
    fn double_source_at_half_averages_laplace() {
        // α = 0.5 halves the Laplace variance relative to a single source.
        let du = 10.0;
        let dw = 10.0;
        let e1 = 1.0;
        let e2 = 1.0;
        let half = double_source_l2(du, dw, 0.5, e1, e2);
        let single = single_source_l2(du, e1, e2);
        let expected = phi_variance(e1) * (0.25 * du + 0.25 * dw)
            + single_source_laplace_variance(e1, e2) * 0.5;
        assert!((half - expected).abs() < 1e-12);
        assert!(half < single);
    }

    #[test]
    fn central_dp_is_smallest() {
        let eps = 2.0;
        let c = central_dp_l2(eps);
        assert!(c < single_source_l2(5.0, eps / 2.0, eps / 2.0));
        assert!(c < one_round_l2(1_000, 5.0, 5.0, eps));
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_bound_properties() {
        assert_eq!(chebyshev_bound(4.0, 0.0), 1.0);
        assert_eq!(chebyshev_bound(4.0, 1.0), 1.0);
        assert!((chebyshev_bound(4.0, 4.0) - 0.25).abs() < 1e-12);
        assert!(chebyshev_bound(4.0, 100.0) < 1e-3);
    }

    #[test]
    fn summary_row_orders_algorithms() {
        // The paper's headline ordering: Naive >> OneR >> MultiR-SS >= MultiR-DS >= CentralDP.
        let row = LossSummaryRow::evaluate(5_000, 20.0, 200.0, 2.0);
        assert!(row.naive > row.one_round);
        assert!(row.one_round > row.multi_r_ss);
        assert!(row.multi_r_ss >= row.multi_r_ds - 1e-9);
        assert!(row.multi_r_ds > row.central);
    }

    #[test]
    fn serde_round_trip() {
        let row = LossSummaryRow::evaluate(100, 5.0, 10.0, 2.0);
        let json = serde_json::to_string(&row).unwrap();
        let back: LossSummaryRow = serde_json::from_str(&json).unwrap();
        assert_eq!(row, back);
    }
}

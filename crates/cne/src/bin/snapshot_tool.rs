//! `snapshot-tool` — write, inspect, and verify binary engine snapshots
//! from the command line (the CLI face of `bigraph::snapshot`).
//!
//! ```text
//! snapshot-tool write  <edges.txt> <out.snap> [--seq N]
//! snapshot-tool info   <file.snap>
//! snapshot-tool verify <file.snap>
//! ```
//!
//! The text edge format is the repo's usual fixture grammar: a first line
//! `n_upper n_lower`, then one `u v` edge per line (blank lines and
//! `#`-comments skipped). `write` builds the graph, packs its dense
//! vertices, and writes the snapshot atomically; `info` prints the header
//! and per-section summary of a valid file; `verify` exits 0 iff the file
//! loads cleanly (every checksum, every CSR invariant) — CI's
//! `snapshot-compat` job drives exactly these subcommands.

use bigraph::snapshot::{read_snapshot, GraphSnapshot};
use bigraph::{BipartiteGraph, Layer};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  snapshot-tool write  <edges.txt> <out.snap> [--seq N]\n  \
         snapshot-tool info   <file.snap>\n  \
         snapshot-tool verify <file.snap>"
    );
    ExitCode::from(2)
}

/// Parses the `n_upper n_lower` + `u v` lines fixture grammar.
fn parse_edges(text: &str) -> Result<BipartiteGraph, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty edge file")?;
    let parse_pair = |line: &str, what: &str| -> Result<(u64, u64), String> {
        let mut it = line.split_whitespace();
        let a = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad {what} line: {line:?}"))?;
        let b = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad {what} line: {line:?}"))?;
        if it.next().is_some() {
            return Err(format!("trailing tokens on {what} line: {line:?}"));
        }
        Ok((a, b))
    };
    let (n_upper, n_lower) = parse_pair(header, "header")?;
    let edges = lines
        .map(|l| parse_pair(l, "edge").map(|(u, v)| (u as u32, v as u32)))
        .collect::<Result<Vec<_>, _>>()?;
    BipartiteGraph::from_edges(n_upper as usize, n_lower as usize, edges)
        .map_err(|e| format!("invalid graph: {e}"))
}

fn cmd_write(edges_path: &str, out_path: &str, seq: u64) -> Result<(), String> {
    let text =
        std::fs::read_to_string(edges_path).map_err(|e| format!("read {edges_path}: {e}"))?;
    let graph = parse_edges(&text)?;
    let snap = GraphSnapshot::capture(&graph, seq);
    snap.write_to(Path::new(out_path))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!(
        "wrote {out_path}: {} upper x {} lower, {} edges, epoch {}, seq {}, packed {}+{}",
        graph.n_upper(),
        graph.n_lower(),
        graph.n_edges(),
        snap.epoch(),
        snap.log_seq(),
        snap.packed(Layer::Upper).len(),
        snap.packed(Layer::Lower).len(),
    );
    Ok(())
}

fn cmd_info(path: &str) -> Result<(), String> {
    let snap = read_snapshot(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let g = snap.graph();
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("snapshot {path}");
    println!("  format version : {}", bigraph::snapshot::VERSION);
    println!("  file bytes     : {bytes}");
    println!(
        "  graph          : {} upper x {} lower, {} edges",
        g.n_upper(),
        g.n_lower(),
        g.n_edges()
    );
    println!("  graph epoch    : {}", snap.epoch());
    println!("  pinned log seq : {}", snap.log_seq());
    for layer in [Layer::Upper, Layer::Lower] {
        let packed = snap.packed(layer);
        let words = g.layer_size(layer.opposite()).div_ceil(64);
        println!(
            "  packed {:5?}   : {} dense vertices ({} bytes of bitmap words)",
            layer,
            packed.len(),
            packed.len() * words * 8,
        );
    }
    Ok(())
}

fn cmd_verify(path: &str) -> Result<(), String> {
    let snap = read_snapshot(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "ok {path}: epoch {}, seq {}, {} edges, packed {}+{}",
        snap.epoch(),
        snap.log_seq(),
        snap.graph().n_edges(),
        snap.packed(Layer::Upper).len(),
        snap.packed(Layer::Lower).len(),
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, edges, out] if cmd == "write" => cmd_write(edges, out, 0),
        [cmd, edges, out, flag, n] if cmd == "write" && flag == "--seq" => match n.parse::<u64>() {
            Ok(seq) => cmd_write(edges, out, seq),
            Err(_) => return usage(),
        },
        [cmd, path] if cmd == "info" => cmd_info(path),
        [cmd, path] if cmd == "verify" => cmd_verify(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("snapshot-tool: {msg}");
            ExitCode::FAILURE
        }
    }
}

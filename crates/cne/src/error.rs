//! Error type for the estimation algorithms.

use std::fmt;

/// Convenient result alias for the estimators.
pub type Result<T> = std::result::Result<T, CneError>;

/// Errors produced while running an estimation protocol.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CneError {
    /// The underlying graph query was invalid (missing vertex, same-vertex
    /// pair, wrong layer, ...).
    Graph(bigraph::GraphError),
    /// A privacy mechanism or budget was mis-configured.
    Ldp(ldp::LdpError),
    /// An algorithm parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A generation-checked read observed an engine that has applied update
    /// batches since the reader's snapshot (see
    /// [`crate::EstimationEngine::check_generation`]). The reader should
    /// re-derive its state from the current graph and retry.
    StaleGeneration {
        /// The generation the reader snapshotted.
        observed: u64,
        /// The engine's current generation.
        current: u64,
    },
}

impl CneError {
    /// For a [`CneError::StaleGeneration`], the engine generation that was
    /// current when the read was rejected — the retry hint: a caller
    /// re-issues the query with this cursor (see
    /// [`EstimationEngine::estimate_with_retry`](crate::EstimationEngine::estimate_with_retry)).
    /// `None` for every other error.
    #[must_use]
    pub fn stale_current(&self) -> Option<u64> {
        match *self {
            CneError::StaleGeneration { current, .. } => Some(current),
            _ => None,
        }
    }
}

impl fmt::Display for CneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CneError::Graph(e) => write!(f, "graph error: {e}"),
            CneError::Ldp(e) => write!(f, "privacy mechanism error: {e}"),
            CneError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CneError::StaleGeneration { observed, current } => write!(
                f,
                "stale generation: reader snapshotted {observed} but the engine is at {current}"
            ),
        }
    }
}

impl std::error::Error for CneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CneError::Graph(e) => Some(e),
            CneError::Ldp(e) => Some(e),
            CneError::InvalidParameter { .. } | CneError::StaleGeneration { .. } => None,
        }
    }
}

impl From<bigraph::GraphError> for CneError {
    fn from(e: bigraph::GraphError) -> Self {
        CneError::Graph(e)
    }
}

impl From<ldp::LdpError> for CneError {
    fn from(e: ldp::LdpError) -> Self {
        CneError::Ldp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_source() {
        let g_err: CneError = bigraph::GraphError::EmptyLayer {
            layer: bigraph::Layer::Upper,
        }
        .into();
        assert!(matches!(g_err, CneError::Graph(_)));
        assert!(std::error::Error::source(&g_err).is_some());

        let l_err: CneError = ldp::LdpError::InvalidBudget { value: -1.0 }.into();
        assert!(matches!(l_err, CneError::Ldp(_)));
        assert!(l_err.to_string().contains("privacy"));

        let p_err = CneError::InvalidParameter {
            name: "epsilon",
            reason: "must be positive".into(),
        };
        assert!(p_err.to_string().contains("epsilon"));
        assert!(std::error::Error::source(&p_err).is_none());
    }

    #[test]
    fn stale_current_extracts_the_retry_hint() {
        let stale = CneError::StaleGeneration {
            observed: 3,
            current: 7,
        };
        assert_eq!(stale.stale_current(), Some(7));
        assert_eq!(
            CneError::InvalidParameter {
                name: "epsilon",
                reason: "must be positive".into(),
            }
            .stale_current(),
            None
        );
    }
}

//! The `MultiR-SS` algorithm (Algorithm 3): a two-round single-source estimator.

use crate::engine::{EngineEstimator, ProtocolEnv, RoundContext, ScratchArena};
use crate::error::{CneError, Result};
use crate::estimate::{AlgorithmKind, ChosenParameters, EstimateReport};
use crate::estimator::CommonNeighborEstimator;
use crate::protocol::{randomized_response_round_packed, Query};
use bigraph::bitset::PackedSet;
use bigraph::{BipartiteGraph, Layer, VertexId};
use ldp::budget::{Composition, PrivacyBudget};
use ldp::laplace::LaplaceMechanism;
use ldp::mechanism::Sensitivity;
use ldp::noisy_graph::NoisyNeighbors;
use serde::{Deserialize, Serialize};

/// The multiple-round single-source estimator.
///
/// Round 1: vertex `w` perturbs its neighbor list with budget `ε₁` and uploads
/// the noisy edges. Round 2: vertex `u` downloads them, combines them with its
/// **true** neighborhood to form
///
/// ```text
/// f_u(u, w) = Σ_{v ∈ N(u,G)} (A'[v,w] − p) / (1 − 2p)
///           = S₁ · (1−p)/(1−2p) − S₂ · p/(1−2p)
/// ```
///
/// (`S₁` = true neighbors of `u` that are noisy neighbors of `w`, `S₂` = the
/// rest), adds Laplace noise scaled to the global sensitivity `(1−p)/(1−2p)`
/// with budget `ε₂`, and uploads the single scalar. Restricting the candidate
/// pool to `N(u, G)` removes the `n₁` factor from the variance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiRSS {
    /// Fraction of the total budget spent on the randomized-response round
    /// (`ε₁ = fraction · ε`, `ε₂ = (1 − fraction) · ε`). The paper's default
    /// is an even split.
    pub epsilon1_fraction: f64,
}

impl Default for MultiRSS {
    fn default() -> Self {
        Self {
            epsilon1_fraction: 0.5,
        }
    }
}

impl MultiRSS {
    /// Creates a MultiR-SS instance with a custom ε₁ fraction.
    ///
    /// # Errors
    ///
    /// Returns [`CneError::InvalidParameter`] unless `0 < fraction < 1`.
    pub fn with_fraction(fraction: f64) -> Result<Self> {
        if fraction > 0.0 && fraction < 1.0 {
            Ok(Self {
                epsilon1_fraction: fraction,
            })
        } else {
            Err(CneError::InvalidParameter {
                name: "epsilon1_fraction",
                reason: format!("must be strictly between 0 and 1, got {fraction}"),
            })
        }
    }
}

/// The unbiasing combination `S₁(1−p)/(1−2p) − S₂·p/(1−2p)` every
/// single-source variant applies to its hit/miss counts. One definition so
/// the bit-identical-across-variants contract cannot drift: each variant
/// differs only in *how* `S₁` is counted, never in this arithmetic.
#[inline]
fn unbias_counts(s1: u64, s2: u64, p: f64) -> f64 {
    let q = 1.0 - 2.0 * p;
    s1 as f64 * (1.0 - p) / q - s2 as f64 * p / q
}

/// The un-noised single-source value `f_source` computed from the true
/// neighborhood of `source` and the noisy neighbor list of the other query
/// vertex. Shared by MultiR-SS and both MultiR-DS variants.
#[must_use]
pub fn single_source_value(
    g: &BipartiteGraph,
    layer: Layer,
    source: VertexId,
    other_noisy: &NoisyNeighbors,
    flip_probability: f64,
) -> f64 {
    let mut s1 = 0u64;
    let mut s2 = 0u64;
    for &v in g.neighbors(layer, source) {
        if other_noisy.contains(v) {
            s1 += 1;
        } else {
            s2 += 1;
        }
    }
    unbias_counts(s1, s2, flip_probability)
}

/// [`single_source_value`] against a pre-packed noisy list.
///
/// The batch engine intersects one noisy target list against *many*
/// candidates' true neighborhoods; packing the noisy list once
/// ([`ldp::noisy_graph::NoisyNeighbors::packed`]) turns every membership
/// test into one bit probe, and [`bigraph::bitset::intersection_size_degree_aware`]
/// upgrades to a word-parallel popcount when a candidate is dense too.
/// Produces exactly the same value as [`single_source_value`].
#[must_use]
pub fn single_source_value_packed(
    g: &BipartiteGraph,
    layer: Layer,
    source: VertexId,
    other_packed: &PackedSet,
    flip_probability: f64,
) -> f64 {
    single_source_value_cached(
        ProtocolEnv::uncached(g),
        layer,
        source,
        other_packed,
        flip_probability,
    )
}

/// [`single_source_value_packed`] routed through a protocol environment.
///
/// When the environment carries a warm [`crate::engine::AdjacencyStore`], a
/// dense source's packed true adjacency is fetched from the cache instead of
/// being rebuilt per call — the win the batch engine's warm path is built on.
/// Every dispatch branch counts the same intersection, so the value is
/// bit-identical to [`single_source_value`] regardless of caching.
#[must_use]
pub fn single_source_value_cached(
    env: ProtocolEnv<'_>,
    layer: Layer,
    source: VertexId,
    other_packed: &PackedSet,
    flip_probability: f64,
) -> f64 {
    let s1 = env.true_intersection_with(layer, source, other_packed);
    let s2 = env.graph.neighbors(layer, source).len() as u64 - s1;
    unbias_counts(s1, s2, flip_probability)
}

/// [`single_source_value_cached`] with a reusable pack buffer: when the
/// dense dispatch has no cached bitmap to fall back on, the source's
/// adjacency is packed into `scratch` instead of a fresh allocation — the
/// kernel of the allocation-free batch candidate loop. Bit-identical to
/// every other variant.
#[must_use]
pub fn single_source_value_scratch(
    env: ProtocolEnv<'_>,
    layer: Layer,
    source: VertexId,
    other_packed: &PackedSet,
    flip_probability: f64,
    scratch: &mut ScratchArena,
) -> f64 {
    let s1 = env.true_intersection_with_scratch(layer, source, other_packed, scratch);
    let s2 = env.graph.neighbors(layer, source).len() as u64 - s1;
    unbias_counts(s1, s2, flip_probability)
}

/// [`single_source_value`] against a packed-native noisy row — the form
/// every engine-routed single-source consumer uses since round 1 produces
/// rows in packed form: membership probes are single bit tests and the
/// dense-source path popcounts the cached adjacency against the row with
/// no packing step at all. Thin shim over
/// [`single_source_value_scratch`]; bit-identical to every other variant.
pub(crate) fn single_source_value_packed_env(
    env: ProtocolEnv<'_>,
    layer: Layer,
    source: VertexId,
    other_noisy: &ldp::noisy_graph::NoisyNeighborsPacked,
    flip_probability: f64,
    scratch: &mut ScratchArena,
) -> f64 {
    single_source_value_scratch(
        env,
        layer,
        source,
        other_noisy.set(),
        flip_probability,
        scratch,
    )
}

/// The un-noised single-source values of one `source` against several noisy
/// rows at once: `out[i]` is bit-identical to
/// [`single_source_value_scratch`]`(env, layer, source, rows[i],
/// flip_probabilities[i], scratch)`.
///
/// The shared work — the strategy dispatch and (for a dense source) the
/// streaming of the candidate bitmap — runs once per source instead of once
/// per row via [`ProtocolEnv::true_intersection_multi_scratch`]; the
/// unbiasing stays the exact per-row arithmetic. `counts` is caller-provided
/// staging for the raw intersection sizes (same length as `rows`).
///
/// # Panics
///
/// Panics if `rows`, `flip_probabilities`, `counts`, and `out` disagree on
/// length.
#[allow(clippy::too_many_arguments)]
pub(crate) fn single_source_value_multi(
    env: ProtocolEnv<'_>,
    layer: Layer,
    source: VertexId,
    rows: &[&PackedSet],
    flip_probabilities: &[f64],
    scratch: &mut ScratchArena,
    counts: &mut [u64],
    out: &mut [f64],
) {
    assert_eq!(rows.len(), flip_probabilities.len(), "one p per row");
    assert_eq!(rows.len(), out.len(), "one value per row");
    env.true_intersection_multi_scratch(layer, source, rows, scratch, counts);
    let degree = env.graph.neighbors(layer, source).len() as u64;
    for ((slot, &s1), &p) in out.iter_mut().zip(counts.iter()).zip(flip_probabilities) {
        *slot = unbias_counts(s1, degree - s1, p);
    }
}

/// The global sensitivity of the single-source estimator: `(1−p)/(1−2p)`.
#[must_use]
pub fn single_source_sensitivity(flip_probability: f64) -> f64 {
    (1.0 - flip_probability) / (1.0 - 2.0 * flip_probability)
}

/// The Laplace mechanism used to release a single-source estimator computed
/// under flip probability `p` with Laplace budget `ε₂`.
///
/// # Errors
///
/// Propagates budget/sensitivity validation errors.
pub fn single_source_laplace(
    flip_probability: f64,
    epsilon2: PrivacyBudget,
) -> Result<LaplaceMechanism> {
    let sensitivity = Sensitivity::new(single_source_sensitivity(flip_probability))?;
    Ok(LaplaceMechanism::new(epsilon2, sensitivity))
}

impl EngineEstimator for MultiRSS {
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        mut ctx: RoundContext<'_>,
    ) -> Result<EstimateReport> {
        query.validate(env.graph)?;
        let (eps1, eps2) = ctx.total().split_fraction(self.epsilon1_fraction)?;

        // Round 1: w applies randomized response with ε₁ and uploads — the
        // noisy row is produced directly in packed form.
        let round1 =
            randomized_response_round_packed(env, query.layer, &[query.w], eps1, 1, &mut ctx)?;
        let p = round1.flip_probability;
        let noisy_w = round1.noisy.into_iter().next().expect("one list requested");

        // Round 2: u downloads the noisy edges of w ...
        ctx.record_download_packed(2, "noisy-edges(w) -> u", &noisy_w);
        // ... combines them with its own neighborhood (through the adjacency
        // cache when the run has one and u is dense — bit-identical either
        // way) ...
        let raw =
            single_source_value_packed_env(env, query.layer, query.u, &noisy_w, p, ctx.scratch());
        // ... and releases the estimator through the Laplace mechanism.
        ctx.charge("round2:laplace(f_u)", eps2, Composition::Sequential)?;
        let laplace = single_source_laplace(p, eps2)?;
        let estimate = laplace.perturb(raw, ctx.rng());
        ctx.record_scalar_upload(2, "estimator(f_u)");

        let epsilon = ctx.epsilon();
        let (budget, transcript) = ctx.finish();
        Ok(EstimateReport {
            algorithm: self.kind(),
            estimate,
            epsilon,
            budget,
            transcript,
            rounds: 2,
            parameters: ChosenParameters {
                epsilon1: Some(eps1.value()),
                epsilon2: Some(eps2.value()),
                ..Default::default()
            },
        })
    }
}

impl CommonNeighborEstimator for MultiRSS {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::MultiRSS
    }

    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport> {
        crate::engine::run_uncached(self, g, query, epsilon, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse_graph() -> (BipartiteGraph, Query) {
        let edges = (0..8u32)
            .map(|v| (0u32, v))
            .chain((4..12u32).map(|v| (1u32, v)));
        let g = BipartiteGraph::from_edges(2, 500, edges).unwrap();
        (g, Query::new(Layer::Upper, 0, 1))
    }

    #[test]
    fn single_source_value_on_exact_noisy_list() {
        // If the "noisy" list equals the true list of w, S1 = C2 and
        // S2 = deg(u) − C2; the value is then slightly biased away from C2 by
        // construction (it is only unbiased in expectation over RR noise).
        let (g, q) = sparse_graph();
        let p = 0.2;
        let noisy_w =
            NoisyNeighbors::from_parts(q.w, q.layer, 500, 2.0, g.neighbors(q.layer, q.w).to_vec());
        let value = single_source_value(&g, q.layer, q.u, &noisy_w, p);
        let s1 = 4.0;
        let s2 = 4.0;
        let expected = s1 * 0.8 / 0.6 - s2 * 0.2 / 0.6;
        assert!((value - expected).abs() < 1e-12);
    }

    #[test]
    fn packed_value_matches_scalar_value() {
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(41);
        for eps in [0.5, 1.0, 4.0] {
            let noisy = NoisyNeighbors::generate(
                &g,
                q.layer,
                q.w,
                ldp::budget::PrivacyBudget::new(eps).unwrap(),
                &mut rng,
            );
            let p = noisy.flip_probability();
            let scalar = single_source_value(&g, q.layer, q.u, &noisy, p);
            let packed = single_source_value_packed(&g, q.layer, q.u, &noisy.packed(), p);
            assert_eq!(
                scalar.to_bits(),
                packed.to_bits(),
                "packed and scalar paths must agree exactly at eps {eps}"
            );
        }
    }

    #[test]
    fn cached_value_matches_scalar_value() {
        use crate::engine::AdjacencyStore;
        // A *dense* source: degree 40 over a 100-item universe (2 packed
        // words, dense threshold 4), so the store-backed popcount branch —
        // not just the probe path — is what gets compared.
        let edges = (0..40u32)
            .map(|v| (0u32, v))
            .chain((20..70u32).map(|v| (1u32, v)));
        let g = BipartiteGraph::from_edges(2, 100, edges).unwrap();
        let q = Query::new(Layer::Upper, 0, 1);
        let store = AdjacencyStore::new(&g);
        let env = ProtocolEnv::cached(&g, &store);
        let mut rng = StdRng::seed_from_u64(43);
        for eps in [0.5, 1.0, 4.0] {
            let noisy = NoisyNeighbors::generate(
                &g,
                q.layer,
                q.w,
                ldp::budget::PrivacyBudget::new(eps).unwrap(),
                &mut rng,
            );
            let p = noisy.flip_probability();
            let scalar = single_source_value(&g, q.layer, q.u, &noisy, p);
            let cached = single_source_value_cached(env, q.layer, q.u, &noisy.packed(), p);
            assert_eq!(
                scalar.to_bits(),
                cached.to_bits(),
                "cached and scalar paths must agree exactly at eps {eps}"
            );
        }
        assert!(
            store.cached_count(q.layer) > 0,
            "the dense source must actually have taken the store-backed branch"
        );
    }

    #[test]
    fn sensitivity_formula() {
        let p = 0.25;
        assert!((single_source_sensitivity(p) - 0.75 / 0.5).abs() < 1e-12);
        // Sensitivity grows as the budget shrinks (p -> 0.5).
        assert!(single_source_sensitivity(0.4) > single_source_sensitivity(0.1));
    }

    #[test]
    fn estimates_are_unbiased() {
        let (g, q) = sparse_graph();
        let truth = q.exact_count(&g).unwrap() as f64; // 4
        let mut rng = StdRng::seed_from_u64(17);
        let runs = 800;
        let algo = MultiRSS::default();
        let mean: f64 = (0..runs)
            .map(|_| algo.estimate(&g, &q, 2.0, &mut rng).unwrap().estimate)
            .sum::<f64>()
            / runs as f64;
        let var = crate::loss::single_source_l2(8.0, 1.0, 1.0);
        let se = (var / runs as f64).sqrt();
        assert!(
            (mean - truth).abs() < 5.0 * se + 0.05,
            "mean {mean} truth {truth} se {se}"
        );
    }

    #[test]
    fn empirical_variance_matches_theorem_6() {
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(23);
        let runs = 1_000;
        let algo = MultiRSS::default();
        let vals: Vec<f64> = (0..runs)
            .map(|_| algo.estimate(&g, &q, 2.0, &mut rng).unwrap().estimate)
            .collect();
        let mean = vals.iter().sum::<f64>() / runs as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / runs as f64;
        let expected = crate::loss::single_source_l2(8.0, 1.0, 1.0);
        assert!(
            (var - expected).abs() < expected * 0.25,
            "empirical var {var} vs theoretical {expected}"
        );
    }

    #[test]
    fn variance_is_much_smaller_than_one_round() {
        // The headline claim: removing the n₁ factor slashes the error.
        let (g, q) = sparse_graph();
        let truth = q.exact_count(&g).unwrap() as f64;
        let mut rng = StdRng::seed_from_u64(31);
        let runs = 150;
        let mut ss_err = 0.0;
        let mut oner_err = 0.0;
        for _ in 0..runs {
            ss_err += (MultiRSS::default()
                .estimate(&g, &q, 1.0, &mut rng)
                .unwrap()
                .estimate
                - truth)
                .abs();
            oner_err += (crate::OneR::default()
                .estimate(&g, &q, 1.0, &mut rng)
                .unwrap()
                .estimate
                - truth)
                .abs();
        }
        assert!(
            ss_err < oner_err,
            "MultiR-SS MAE {} should beat OneR {}",
            ss_err / runs as f64,
            oner_err / runs as f64
        );
    }

    #[test]
    fn budget_split_and_transcript() {
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let report = MultiRSS::default().estimate(&g, &q, 2.0, &mut rng).unwrap();
        assert_eq!(report.rounds, 2);
        assert_eq!(report.parameters.epsilon1, Some(1.0));
        assert_eq!(report.parameters.epsilon2, Some(1.0));
        assert!((report.budget.consumed() - 2.0).abs() < 1e-9);
        // Round 1 upload, round 2 download + scalar upload. The default run
        // is lean, so the count comes from the always-on stats.
        assert_eq!(report.transcript.message_count(), 3);
        assert!(report.transcript.messages().is_empty());
        assert_eq!(report.transcript.rounds(), 2);
    }

    #[test]
    fn custom_fraction_validated() {
        assert!(MultiRSS::with_fraction(0.3).is_ok());
        assert!(MultiRSS::with_fraction(0.0).is_err());
        assert!(MultiRSS::with_fraction(1.0).is_err());
        assert!(MultiRSS::with_fraction(f64::NAN).is_err());
        let (g, q) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let report = MultiRSS::with_fraction(0.25)
            .unwrap()
            .estimate(&g, &q, 2.0, &mut rng)
            .unwrap();
        assert!((report.parameters.epsilon1.unwrap() - 0.5).abs() < 1e-12);
        assert!((report.parameters.epsilon2.unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_query_rejected() {
        let (g, _) = sparse_graph();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(MultiRSS::default()
            .estimate(&g, &Query::new(Layer::Upper, 1, 1), 2.0, &mut rng)
            .is_err());
    }
}

//! The double-source algorithms (Algorithm 4): `MultiR-DS`, `MultiR-DS-Basic`
//! and `MultiR-DS*`.
//!
//! All three combine the two single-source estimators `f̃_u` and `f̃_w`:
//!
//! * [`MultiRDSBasic`] averages them with a fixed, even budget split —
//!   no degree estimation, no optimisation;
//! * [`MultiRDS`] spends a small budget `ε₀` on noisy degree estimates, then
//!   picks the budget split `ε₁` and the weight `α` that minimise the analytic
//!   L2 loss before running the remaining rounds;
//! * [`MultiRDSStar`] is `MultiR-DS` under the assumption that vertex degrees
//!   are public, so the `ε₀` round is skipped and the whole budget goes to the
//!   optimised `ε₁ + ε₂` split.

use crate::engine::{EngineEstimator, ProtocolEnv, RoundContext};
use crate::error::{CneError, Result};
use crate::estimate::{AlgorithmKind, ChosenParameters, EstimateReport};
use crate::estimator::CommonNeighborEstimator;
use crate::optimizer::optimize_double_source;
use crate::protocol::{randomized_response_round_packed, Query, SCALAR_BYTES};
use crate::single_source::{single_source_laplace, single_source_value_packed_env};
use bigraph::{BipartiteGraph, VertexId};
use ldp::budget::{Composition, PrivacyBudget};
use ldp::laplace::LaplaceMechanism;
use ldp::mechanism::Sensitivity;
use ldp::transcript::{Direction, Label};
use serde::{Deserialize, Serialize};

/// Fraction of the total budget MultiR-DS spends on degree estimation
/// (`ε₀ = 0.05 ε`, the paper's default).
pub const DEFAULT_EPSILON0_FRACTION: f64 = 0.05;

/// The plain double-source estimator: `(f̃_u + f̃_w) / 2` with a fixed split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiRDSBasic {
    /// Fraction of the budget spent on randomized response (`ε₁ = fraction·ε`).
    pub epsilon1_fraction: f64,
}

impl Default for MultiRDSBasic {
    fn default() -> Self {
        Self {
            epsilon1_fraction: 0.5,
        }
    }
}

impl MultiRDSBasic {
    /// Creates a basic double-source estimator with a custom ε₁ fraction.
    ///
    /// # Errors
    ///
    /// Returns [`CneError::InvalidParameter`] unless `0 < fraction < 1`.
    pub fn with_fraction(fraction: f64) -> Result<Self> {
        if fraction > 0.0 && fraction < 1.0 {
            Ok(Self {
                epsilon1_fraction: fraction,
            })
        } else {
            Err(CneError::InvalidParameter {
                name: "epsilon1_fraction",
                reason: format!("must be strictly between 0 and 1, got {fraction}"),
            })
        }
    }
}

/// The full MultiR-DS algorithm with degree estimation and `(ε₁, α)` optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiRDS {
    /// Fraction of the budget spent on the degree-estimation round.
    pub epsilon0_fraction: f64,
}

impl Default for MultiRDS {
    fn default() -> Self {
        Self {
            epsilon0_fraction: DEFAULT_EPSILON0_FRACTION,
        }
    }
}

impl MultiRDS {
    /// Creates a MultiR-DS instance with a custom ε₀ fraction.
    ///
    /// # Errors
    ///
    /// Returns [`CneError::InvalidParameter`] unless `0 < fraction < 0.5`.
    pub fn with_epsilon0_fraction(fraction: f64) -> Result<Self> {
        if fraction > 0.0 && fraction < 0.5 {
            Ok(Self {
                epsilon0_fraction: fraction,
            })
        } else {
            Err(CneError::InvalidParameter {
                name: "epsilon0_fraction",
                reason: format!("must be in (0, 0.5), got {fraction}"),
            })
        }
    }
}

/// MultiR-DS with public degrees: no `ε₀` round, otherwise identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiRDSStar;

/// Outcome of the shared rounds 2–3 of the double-source algorithms.
struct DoubleSourceRounds {
    f_u: f64,
    f_w: f64,
}

/// Runs the RR round for both query vertices and builds both noisy
/// single-source estimators (rounds 2 and 3 of Algorithm 4).
fn run_double_source_rounds(
    env: ProtocolEnv<'_>,
    query: &Query,
    eps1: PrivacyBudget,
    eps2: PrivacyBudget,
    first_round: u32,
    ctx: &mut RoundContext<'_>,
) -> Result<DoubleSourceRounds> {
    // RR round: both u and w perturb and upload their noisy edges — the
    // rows are produced directly in packed form (cached adjacency bitmaps
    // OR in word-wise when the run has a warm store).
    let rr = randomized_response_round_packed(
        env,
        query.layer,
        &[query.u, query.w],
        eps1,
        first_round,
        ctx,
    )?;
    let p = rr.flip_probability;
    let mut noisy = rr.noisy.into_iter();
    let noisy_u = noisy.next().expect("two lists requested");
    let noisy_w = noisy.next().expect("two lists requested");

    // Estimator round: each query vertex downloads the other's noisy edges,
    // builds its single-source estimator, adds Laplace noise, and uploads it.
    let round = first_round + 1;
    ctx.record_download_packed(round, "noisy-edges(w) -> u", &noisy_w);
    ctx.record_download_packed(round, "noisy-edges(u) -> w", &noisy_u);

    let laplace = single_source_laplace(p, eps2)?;
    ctx.charge(
        Label::Indexed("round", round, ":laplace(f_u)"),
        eps2,
        Composition::Sequential,
    )?;
    // f_w is computed from w's own neighbor list — disjoint data from u's —
    // so its release composes in parallel with f_u's (Theorem 10).
    ctx.charge(
        Label::Indexed("round", round, ":laplace(f_w)"),
        eps2,
        Composition::Parallel,
    )?;

    // Both sub-estimators read the already-packed noisy rows: a dense
    // source popcounts its cached bitmap against the row, a sparse source
    // bit-probes it per neighbor (bit-identical either way — see
    // `single_source_value_packed_env`).
    let raw_u =
        single_source_value_packed_env(env, query.layer, query.u, &noisy_w, p, ctx.scratch());
    let raw_w =
        single_source_value_packed_env(env, query.layer, query.w, &noisy_u, p, ctx.scratch());
    let f_u = laplace.perturb(raw_u, ctx.rng());
    let f_w = laplace.perturb(raw_w, ctx.rng());
    ctx.record_scalar_upload(round, "estimator(f_u)");
    ctx.record_scalar_upload(round, "estimator(f_w)");

    Ok(DoubleSourceRounds { f_u, f_w })
}

impl EngineEstimator for MultiRDSBasic {
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        mut ctx: RoundContext<'_>,
    ) -> Result<EstimateReport> {
        query.validate(env.graph)?;
        let (eps1, eps2) = ctx.total().split_fraction(self.epsilon1_fraction)?;

        let rounds = run_double_source_rounds(env, query, eps1, eps2, 1, &mut ctx)?;
        let estimate = 0.5 * rounds.f_u + 0.5 * rounds.f_w;

        let epsilon = ctx.epsilon();
        let (budget, transcript) = ctx.finish();
        Ok(EstimateReport {
            algorithm: self.kind(),
            estimate,
            epsilon,
            budget,
            transcript,
            rounds: 2,
            parameters: ChosenParameters {
                epsilon1: Some(eps1.value()),
                epsilon2: Some(eps2.value()),
                alpha: Some(0.5),
                ..Default::default()
            },
        })
    }
}

impl CommonNeighborEstimator for MultiRDSBasic {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::MultiRDSBasic
    }

    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport> {
        crate::engine::run_uncached(self, g, query, epsilon, rng)
    }
}

impl EngineEstimator for MultiRDS {
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        mut ctx: RoundContext<'_>,
    ) -> Result<EstimateReport> {
        query.validate(env.graph)?;
        let (eps0, eps_rest) = ctx.total().split_fraction(self.epsilon0_fraction)?;

        // ---- Round 1: degree estimation under ε₀ ----------------------------
        // Every vertex on the query layer reports its degree through the
        // Laplace mechanism (sensitivity 1). The reports cover disjoint
        // neighbor lists, so they compose in parallel and the round costs ε₀.
        ctx.charge("round1:laplace(degrees)", eps0, Composition::Sequential)?;
        let degree_laplace = LaplaceMechanism::new(eps0, Sensitivity::one());
        let layer_size = env.graph.layer_size(query.layer);
        let mut noisy_degree_sum = 0.0;
        let mut noisy_du = 0.0;
        let mut noisy_dw = 0.0;
        for v in 0..layer_size as VertexId {
            let noisy = degree_laplace.perturb(env.graph.degree(query.layer, v) as f64, ctx.rng());
            noisy_degree_sum += noisy;
            if v == query.u {
                noisy_du = noisy;
            }
            if v == query.w {
                noisy_dw = noisy;
            }
        }
        ctx.record(
            1,
            Direction::Upload,
            "noisy-degrees(layer)",
            layer_size * SCALAR_BYTES,
        );
        // Correct non-positive noisy degrees with the (noisy) layer average.
        let avg_degree = (noisy_degree_sum / layer_size.max(1) as f64).max(1.0);
        if noisy_du <= 0.0 {
            noisy_du = avg_degree;
        }
        if noisy_dw <= 0.0 {
            noisy_dw = avg_degree;
        }

        // ---- Choose (ε₁, α) minimising the analytic loss ---------------------
        let allocation = optimize_double_source(noisy_du, noisy_dw, eps_rest.value());
        let eps1 = PrivacyBudget::new(allocation.epsilon1)?;
        let eps2 = PrivacyBudget::new(allocation.epsilon2)?;
        let alpha = allocation.alpha;

        // ---- Rounds 2–3: RR + two single-source estimators -------------------
        let rounds = run_double_source_rounds(env, query, eps1, eps2, 2, &mut ctx)?;
        let estimate = alpha * rounds.f_u + (1.0 - alpha) * rounds.f_w;

        let epsilon = ctx.epsilon();
        let (budget, transcript) = ctx.finish();
        Ok(EstimateReport {
            algorithm: self.kind(),
            estimate,
            epsilon,
            budget,
            transcript,
            rounds: 3,
            parameters: ChosenParameters {
                epsilon0: Some(eps0.value()),
                epsilon1: Some(eps1.value()),
                epsilon2: Some(eps2.value()),
                alpha: Some(alpha),
                degree_u: Some(noisy_du),
                degree_w: Some(noisy_dw),
            },
        })
    }
}

impl CommonNeighborEstimator for MultiRDS {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::MultiRDS
    }

    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport> {
        crate::engine::run_uncached(self, g, query, epsilon, rng)
    }
}

impl EngineEstimator for MultiRDSStar {
    fn estimate_in(
        &self,
        env: ProtocolEnv<'_>,
        query: &Query,
        mut ctx: RoundContext<'_>,
    ) -> Result<EstimateReport> {
        query.validate(env.graph)?;

        // Degrees are public: use them directly and optimise over the full ε.
        let du = env.graph.degree(query.layer, query.u) as f64;
        let dw = env.graph.degree(query.layer, query.w) as f64;
        let allocation = optimize_double_source(du.max(1e-9), dw.max(1e-9), ctx.epsilon());
        let eps1 = PrivacyBudget::new(allocation.epsilon1)?;
        let eps2 = PrivacyBudget::new(allocation.epsilon2)?;
        let alpha = allocation.alpha;

        let rounds = run_double_source_rounds(env, query, eps1, eps2, 1, &mut ctx)?;
        let estimate = alpha * rounds.f_u + (1.0 - alpha) * rounds.f_w;

        let epsilon = ctx.epsilon();
        let (budget, transcript) = ctx.finish();
        Ok(EstimateReport {
            algorithm: self.kind(),
            estimate,
            epsilon,
            budget,
            transcript,
            rounds: 2,
            parameters: ChosenParameters {
                epsilon1: Some(eps1.value()),
                epsilon2: Some(eps2.value()),
                alpha: Some(alpha),
                degree_u: Some(du),
                degree_w: Some(dw),
                ..Default::default()
            },
        })
    }
}

impl CommonNeighborEstimator for MultiRDSStar {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::MultiRDSStar
    }

    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport> {
        crate::engine::run_uncached(self, g, query, epsilon, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A graph with an imbalanced query pair: deg(u) = 6, deg(w) = 120.
    fn imbalanced_graph() -> (BipartiteGraph, Query) {
        let edges = (0..6u32)
            .map(|v| (0u32, v))
            .chain((0..120u32).map(|v| (1u32, v)))
            .chain((0..30u32).map(|v| (2u32, v + 50)));
        let g = BipartiteGraph::from_edges(3, 400, edges).unwrap();
        (g, Query::new(Layer::Upper, 0, 1))
    }

    #[test]
    fn ds_basic_is_unbiased() {
        let (g, q) = imbalanced_graph();
        let truth = q.exact_count(&g).unwrap() as f64; // 6
        let mut rng = StdRng::seed_from_u64(13);
        let runs = 800;
        let algo = MultiRDSBasic::default();
        let mean: f64 = (0..runs)
            .map(|_| algo.estimate(&g, &q, 2.0, &mut rng).unwrap().estimate)
            .sum::<f64>()
            / runs as f64;
        let var = crate::loss::double_source_l2(6.0, 120.0, 0.5, 1.0, 1.0);
        let se = (var / runs as f64).sqrt();
        assert!(
            (mean - truth).abs() < 5.0 * se + 0.05,
            "mean {mean} truth {truth}"
        );
    }

    #[test]
    fn ds_is_unbiased_and_beats_basic_on_imbalanced_pairs() {
        let (g, q) = imbalanced_graph();
        let truth = q.exact_count(&g).unwrap() as f64;
        let mut rng = StdRng::seed_from_u64(29);
        let runs = 400;
        let ds = MultiRDS::default();
        let basic = MultiRDSBasic::default();
        let mut ds_sq = 0.0;
        let mut basic_sq = 0.0;
        let mut ds_sum = 0.0;
        for _ in 0..runs {
            let a = ds.estimate(&g, &q, 2.0, &mut rng).unwrap().estimate;
            let b = basic.estimate(&g, &q, 2.0, &mut rng).unwrap().estimate;
            ds_sum += a;
            ds_sq += (a - truth) * (a - truth);
            basic_sq += (b - truth) * (b - truth);
        }
        let ds_mean = ds_sum / runs as f64;
        // Unbiasedness within a loose statistical tolerance.
        assert!(
            (ds_mean - truth).abs() < 1.0,
            "DS mean {ds_mean} vs truth {truth}"
        );
        // On a highly imbalanced pair DS should have lower squared error.
        assert!(
            ds_sq < basic_sq,
            "DS L2 {} should beat Basic {}",
            ds_sq / runs as f64,
            basic_sq / runs as f64
        );
    }

    #[test]
    fn ds_star_beats_or_matches_ds() {
        // DS* skips the ε₀ round, so it has more budget for the other rounds
        // and uses exact degrees: its error should not be (much) worse.
        let (g, q) = imbalanced_graph();
        let truth = q.exact_count(&g).unwrap() as f64;
        let mut rng = StdRng::seed_from_u64(41);
        let runs = 400;
        let mut star_sq = 0.0;
        let mut ds_sq = 0.0;
        for _ in 0..runs {
            let a = MultiRDSStar
                .estimate(&g, &q, 2.0, &mut rng)
                .unwrap()
                .estimate;
            let b = MultiRDS::default()
                .estimate(&g, &q, 2.0, &mut rng)
                .unwrap()
                .estimate;
            star_sq += (a - truth) * (a - truth);
            ds_sq += (b - truth) * (b - truth);
        }
        assert!(
            star_sq < ds_sq * 1.2,
            "DS* L2 {} should be <= ~DS L2 {}",
            star_sq / runs as f64,
            ds_sq / runs as f64
        );
    }

    #[test]
    fn ds_alpha_favours_low_degree_vertex() {
        let (g, q) = imbalanced_graph();
        let mut rng = StdRng::seed_from_u64(55);
        let report = MultiRDS::default().estimate(&g, &q, 2.0, &mut rng).unwrap();
        let alpha = report.parameters.alpha.unwrap();
        // deg(u) = 6 << deg(w) = 120, so f_u should dominate.
        assert!(
            alpha > 0.5,
            "alpha {alpha} should favour the low-degree vertex"
        );
        assert_eq!(report.rounds, 3);
        assert!(report.parameters.epsilon0.is_some());
        assert!(report.parameters.degree_u.is_some());
    }

    #[test]
    fn budgets_never_exceed_epsilon() {
        let (g, q) = imbalanced_graph();
        let mut rng = StdRng::seed_from_u64(3);
        for eps in [1.0, 2.0, 3.0] {
            for report in [
                MultiRDSBasic::default()
                    .estimate(&g, &q, eps, &mut rng)
                    .unwrap(),
                MultiRDS::default().estimate(&g, &q, eps, &mut rng).unwrap(),
                MultiRDSStar.estimate(&g, &q, eps, &mut rng).unwrap(),
            ] {
                assert!(
                    report.budget.consumed() <= eps + 1e-9,
                    "{}: consumed {} > {eps}",
                    report.algorithm,
                    report.budget.consumed()
                );
            }
        }
    }

    #[test]
    fn ds_communication_includes_degree_round() {
        use crate::engine::run_detailed;
        let (g, q) = imbalanced_graph();
        let mut rng = StdRng::seed_from_u64(7);
        let ds = run_detailed(&MultiRDS::default(), &g, &q, 2.0, &mut rng).unwrap();
        // DS uploads one noisy degree per vertex of the query layer in round 1.
        let degree_msg = ds
            .transcript
            .messages()
            .iter()
            .find(|m| m.label == "noisy-degrees(layer)")
            .expect("MultiR-DS must record the degree-estimation upload");
        assert_eq!(degree_msg.bytes, g.layer_size(q.layer) * SCALAR_BYTES);
        assert_eq!(degree_msg.round, 1);
        // Basic and DS* skip the degree round entirely.
        let basic = run_detailed(&MultiRDSBasic::default(), &g, &q, 2.0, &mut rng).unwrap();
        let star = run_detailed(&MultiRDSStar, &g, &q, 2.0, &mut rng).unwrap();
        for report in [&basic, &star] {
            assert!(report
                .transcript
                .messages()
                .iter()
                .all(|m| m.label != "noisy-degrees(layer)"));
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(MultiRDSBasic::with_fraction(0.7).is_ok());
        assert!(MultiRDSBasic::with_fraction(0.0).is_err());
        assert!(MultiRDSBasic::with_fraction(1.0).is_err());
        assert!(MultiRDS::with_epsilon0_fraction(0.1).is_ok());
        assert!(MultiRDS::with_epsilon0_fraction(0.5).is_err());
        assert!(MultiRDS::with_epsilon0_fraction(-0.1).is_err());
    }

    #[test]
    fn invalid_queries_rejected() {
        let (g, _) = imbalanced_graph();
        let mut rng = StdRng::seed_from_u64(1);
        for algo in [
            Box::new(MultiRDSBasic::default()) as Box<dyn CommonNeighborEstimator>,
            Box::new(MultiRDS::default()),
            Box::new(MultiRDSStar),
        ] {
            assert!(algo
                .estimate(&g, &Query::new(Layer::Upper, 0, 0), 2.0, &mut rng)
                .is_err());
            assert!(algo
                .estimate(&g, &Query::new(Layer::Upper, 0, 1), -1.0, &mut rng)
                .is_err());
        }
    }
}

//! Privacy-preserving vertex similarity.
//!
//! The paper motivates common-neighborhood estimation as the primitive behind
//! vertex-similarity computation: Jaccard similarity is
//! `C2(u,w) / (deg u + deg w − C2(u,w))` and cosine similarity is
//! `C2(u,w) / √(deg u · deg w)`. This module composes the MultiR-DS estimator
//! with LDP degree releases to estimate both similarities end-to-end under a
//! single overall budget — the "first step towards vertex similarity under
//! edge LDP" the paper describes, made concrete.

use crate::double_source::MultiRDS;
use crate::error::{CneError, Result};
use crate::estimate::EstimateReport;
use crate::estimator::CommonNeighborEstimator;
use crate::protocol::Query;
use bigraph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Which similarity measure to estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimilarityMeasure {
    /// `C2 / (deg u + deg w − C2)`.
    Jaccard,
    /// `C2 / sqrt(deg u · deg w)`.
    Cosine,
}

/// The result of a private similarity estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimilarityReport {
    /// The measure that was estimated.
    pub measure: SimilarityMeasure,
    /// The similarity estimate, clamped to `[0, 1]`.
    pub similarity: f64,
    /// The underlying common-neighbor estimate and its accounting.
    pub c2_report: EstimateReport,
    /// The (noisy) degree of `u` used in the denominator.
    pub degree_u: f64,
    /// The (noisy) degree of `w` used in the denominator.
    pub degree_w: f64,
}

/// Estimates Jaccard or cosine similarity of two same-layer vertices under
/// ε-edge LDP.
///
/// The estimator reuses the MultiR-DS protocol: its degree-estimation round
/// already releases noisy degrees of `u` and `w` under `ε₀`, so no additional
/// budget is needed for the denominator — the whole similarity estimate costs
/// exactly `epsilon`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityEstimator {
    /// The measure to estimate.
    pub measure: SimilarityMeasure,
    /// The underlying MultiR-DS configuration.
    pub inner: MultiRDS,
}

impl SimilarityEstimator {
    /// A Jaccard-similarity estimator with default MultiR-DS parameters.
    #[must_use]
    pub fn jaccard() -> Self {
        Self {
            measure: SimilarityMeasure::Jaccard,
            inner: MultiRDS::default(),
        }
    }

    /// A cosine-similarity estimator with default MultiR-DS parameters.
    #[must_use]
    pub fn cosine() -> Self {
        Self {
            measure: SimilarityMeasure::Cosine,
            inner: MultiRDS::default(),
        }
    }

    /// Runs the protocol and assembles the similarity estimate.
    ///
    /// # Errors
    ///
    /// Propagates graph/budget errors from the underlying MultiR-DS run, and
    /// reports an internal error if the degree round did not produce degrees
    /// (which would indicate a protocol bug).
    pub fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<SimilarityReport> {
        let c2_report = self.inner.estimate(g, query, epsilon, rng)?;
        let degree_u = c2_report
            .parameters
            .degree_u
            .ok_or_else(|| CneError::InvalidParameter {
                name: "degree_u",
                reason: "MultiR-DS did not report a degree estimate".into(),
            })?;
        let degree_w = c2_report
            .parameters
            .degree_w
            .ok_or_else(|| CneError::InvalidParameter {
                name: "degree_w",
                reason: "MultiR-DS did not report a degree estimate".into(),
            })?;
        // Post-processing of already-private quantities: clamp the numerator
        // to the feasible range [0, min(deg)] before forming the ratio.
        let c2 = c2_report
            .estimate
            .clamp(0.0, degree_u.min(degree_w).max(0.0));
        let similarity = match self.measure {
            SimilarityMeasure::Jaccard => {
                let union = (degree_u + degree_w - c2).max(1e-9);
                c2 / union
            }
            SimilarityMeasure::Cosine => {
                let denom = (degree_u * degree_w).max(1e-9).sqrt();
                c2 / denom
            }
        };
        Ok(SimilarityReport {
            measure: self.measure,
            similarity: similarity.clamp(0.0, 1.0),
            c2_report,
            degree_u,
            degree_w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::{common_neighbors, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two users sharing 30 of their 40/50 items among 600 candidates.
    fn graph() -> (BipartiteGraph, Query) {
        let u_edges = (0..40u32).map(|v| (0u32, v));
        let w_edges = (10..60u32).map(|v| (1u32, v));
        let g = BipartiteGraph::from_edges(2, 600, u_edges.chain(w_edges)).unwrap();
        (g, Query::new(Layer::Upper, 0, 1))
    }

    #[test]
    fn jaccard_estimate_tracks_truth() {
        let (g, q) = graph();
        let true_jaccard = common_neighbors::jaccard(&g, Layer::Upper, 0, 1).unwrap();
        let estimator = SimilarityEstimator::jaccard();
        let mut rng = StdRng::seed_from_u64(3);
        let runs = 200;
        let mean: f64 = (0..runs)
            .map(|_| {
                estimator
                    .estimate(&g, &q, 2.0, &mut rng)
                    .unwrap()
                    .similarity
            })
            .sum::<f64>()
            / runs as f64;
        assert!(
            (mean - true_jaccard).abs() < 0.12,
            "mean {mean} vs true {true_jaccard}"
        );
    }

    #[test]
    fn cosine_estimate_tracks_truth() {
        let (g, q) = graph();
        let true_cosine = common_neighbors::cosine(&g, Layer::Upper, 0, 1).unwrap();
        let estimator = SimilarityEstimator::cosine();
        let mut rng = StdRng::seed_from_u64(5);
        let runs = 200;
        let mean: f64 = (0..runs)
            .map(|_| {
                estimator
                    .estimate(&g, &q, 2.0, &mut rng)
                    .unwrap()
                    .similarity
            })
            .sum::<f64>()
            / runs as f64;
        assert!(
            (mean - true_cosine).abs() < 0.12,
            "mean {mean} vs true {true_cosine}"
        );
    }

    #[test]
    fn similarity_is_clamped_and_budgeted() {
        let (g, q) = graph();
        let estimator = SimilarityEstimator::jaccard();
        let mut rng = StdRng::seed_from_u64(7);
        for eps in [0.5, 1.0, 3.0] {
            let report = estimator.estimate(&g, &q, eps, &mut rng).unwrap();
            assert!((0.0..=1.0).contains(&report.similarity));
            assert!(report.c2_report.budget.consumed() <= eps + 1e-9);
            assert!(report.degree_u > 0.0);
            assert!(report.degree_w > 0.0);
        }
    }

    #[test]
    fn disjoint_neighborhoods_give_near_zero_similarity() {
        let u_edges = (0..20u32).map(|v| (0u32, v));
        let w_edges = (100..120u32).map(|v| (1u32, v));
        let g = BipartiteGraph::from_edges(2, 300, u_edges.chain(w_edges)).unwrap();
        let q = Query::new(Layer::Upper, 0, 1);
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 100;
        let mean: f64 = (0..runs)
            .map(|_| {
                SimilarityEstimator::jaccard()
                    .estimate(&g, &q, 2.0, &mut rng)
                    .unwrap()
                    .similarity
            })
            .sum::<f64>()
            / runs as f64;
        assert!(mean < 0.15, "mean {mean} should be near zero");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (g, _) = graph();
        let mut rng = StdRng::seed_from_u64(1);
        let estimator = SimilarityEstimator::jaccard();
        assert!(estimator
            .estimate(&g, &Query::new(Layer::Upper, 0, 0), 2.0, &mut rng)
            .is_err());
        assert!(estimator
            .estimate(&g, &Query::new(Layer::Upper, 0, 1), -1.0, &mut rng)
            .is_err());
    }

    #[test]
    fn serde_round_trip() {
        let (g, q) = graph();
        let mut rng = StdRng::seed_from_u64(13);
        let report = SimilarityEstimator::cosine()
            .estimate(&g, &q, 2.0, &mut rng)
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: SimilarityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.measure, SimilarityMeasure::Cosine);
        assert!((back.similarity - report.similarity).abs() < 1e-12);
    }
}

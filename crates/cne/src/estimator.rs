//! The [`CommonNeighborEstimator`] trait unifying all algorithms.

use crate::error::Result;
use crate::estimate::{AlgorithmKind, EstimateReport};
use crate::protocol::Query;
use bigraph::BipartiteGraph;

/// A privacy-preserving estimator of the common-neighbor count `C2(u, w)`.
///
/// Implementations take the *whole* graph because they simulate both the
/// vertex side and the curator side of the protocol; the privacy guarantee is
/// that everything recorded in the returned transcript — i.e. everything that
/// crosses the client/curator boundary — satisfies `ε`-edge LDP.
///
/// The trait is object safe (`&mut dyn RngCore`), so experiment harnesses can
/// iterate over a heterogeneous list of algorithms.
pub trait CommonNeighborEstimator {
    /// Which algorithm this is.
    fn kind(&self) -> AlgorithmKind;

    /// Runs the protocol for `query` with total privacy budget `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid queries (unknown vertices, `u == w`),
    /// non-positive budgets, or mis-configured algorithm parameters.
    fn estimate(
        &self,
        g: &BipartiteGraph,
        query: &Query,
        epsilon: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<EstimateReport>;
}

/// Convenience: run `runs` independent estimates and return the raw values.
///
/// # Errors
///
/// Propagates the first error any run produces.
pub fn repeated_estimates<E: CommonNeighborEstimator + ?Sized>(
    estimator: &E,
    g: &BipartiteGraph,
    query: &Query,
    epsilon: f64,
    runs: usize,
    rng: &mut dyn rand::RngCore,
) -> Result<Vec<f64>> {
    let mut out = Vec::with_capacity(runs);
    for _ in 0..runs {
        out.push(estimator.estimate(g, query, epsilon, rng)?.estimate);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CentralDP, Naive, OneR};
    use bigraph::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            2,
            30,
            (0..10u32).map(|v| (0, v)).chain((5..15u32).map(|v| (1, v))),
        )
        .unwrap()
    }

    #[test]
    fn trait_objects_work() {
        let algorithms: Vec<Box<dyn CommonNeighborEstimator>> = vec![
            Box::new(Naive),
            Box::new(OneR::default()),
            Box::new(CentralDP),
        ];
        let g = toy();
        let q = Query::new(Layer::Upper, 0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        for algo in &algorithms {
            let report = algo.estimate(&g, &q, 2.0, &mut rng).unwrap();
            assert_eq!(report.algorithm, algo.kind());
            assert!(report.estimate.is_finite());
        }
    }

    #[test]
    fn repeated_estimates_length() {
        let g = toy();
        let q = Query::new(Layer::Upper, 0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let vals = repeated_estimates(&OneR::default(), &g, &q, 2.0, 25, &mut rng).unwrap();
        assert_eq!(vals.len(), 25);
        assert!(vals.iter().all(|v| v.is_finite()));
    }
}

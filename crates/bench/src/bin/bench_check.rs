//! The CI perf-regression gate (`bench-check` job).
//!
//! Reads the recorded baseline (`BENCH_micro.json`) and a log produced by
//! running the criterion stub (`cargo bench -p bench --bench
//! engine_cached_batch --bench micro_primitives`), and fails — exit code
//! 1 — when a gated speedup ratio regressed by more than the tolerance.
//!
//! Gates compare **ratios of benchmarks from the same run** (warm engine
//! vs uncached path, skip sampling vs dense perturbation) against the same
//! ratios in the baseline, not absolute nanoseconds: CI hardware differs
//! from the recording machine, but a ratio like "warm multi-target is
//! 3.8× the uncached path" is a property of the code, so a warm
//! multi-target run that regresses > 1.5× relative to the baseline ratio
//! fails the gate on any machine.
//!
//! Usage: `bench-check <BENCH_micro.json> <bench.log>`

use std::collections::HashMap;
use std::process::ExitCode;

/// Regression tolerance: a gated ratio may be up to this factor worse than
/// the recorded baseline ratio before the gate fails.
const TOLERANCE: f64 = 1.5;

/// One gate: `numerator / denominator` (both benchmark ids, mean ns) must
/// not exceed the baseline's ratio by more than [`TOLERANCE`].
struct Gate {
    name: &'static str,
    numerator: &'static str,
    denominator: &'static str,
}

/// The gated invariants of the warm engine and the perturbation kernels.
const GATES: &[Gate] = &[
    Gate {
        name: "engine warm multi-target vs uncached",
        numerator: "micro/engine_cached_batch/warm_multi_target",
        denominator: "micro/engine_cached_batch/uncached_multi_target",
    },
    Gate {
        name: "engine warm single-target vs uncached",
        numerator: "micro/engine_cached_batch/warm_single_target",
        denominator: "micro/engine_cached_batch/uncached_single_target",
    },
    Gate {
        name: "engine warm batch vs cold store (cache-fill amortization)",
        numerator: "micro/engine_cached_batch/warm_single_target",
        denominator: "micro/engine_cached_batch/cold_single_target",
    },
    Gate {
        name: "perturb skip-sampling vs dense (eps=1)",
        numerator: "micro/perturb_sparse_large/skip/1",
        denominator: "micro/perturb_sparse_large/dense/1",
    },
    Gate {
        name: "perturb skip-sampling vs dense (eps=4)",
        numerator: "micro/perturb_sparse_large/skip/4",
        denominator: "micro/perturb_sparse_large/dense/4",
    },
    Gate {
        name: "perturb packed-native vs list output (eps=1)",
        numerator: "micro/perturb_sparse_large/packed/1",
        denominator: "micro/perturb_sparse_large/skip/1",
    },
    Gate {
        name: "perturb packed-native vs list output (eps=4)",
        numerator: "micro/perturb_sparse_large/packed/4",
        denominator: "micro/perturb_sparse_large/skip/4",
    },
    Gate {
        name: "perturb packed-native vs dense reference (eps=1)",
        numerator: "micro/perturb_sparse_large/packed/1",
        denominator: "micro/perturb_sparse_large/dense/1",
    },
    // Kernel-dispatch gates: hardware-neutral by construction — whatever
    // tier the CPU selects is compared against the scalar reference from
    // the same run, so the gate holds on AVX2, popcnt-only, and portable
    // machines alike.
    Gate {
        name: "popcount dispatched kernel vs scalar reference",
        numerator: "micro/popcount_kernels/dispatched",
        denominator: "micro/popcount_kernels/scalar",
    },
    Gate {
        name: "rng setup batched vs per-seed",
        numerator: "micro/rng_setup/batched_256",
        denominator: "micro/rng_setup/scalar_256",
    },
    Gate {
        name: "laplace block sampler vs scalar draws",
        numerator: "micro/laplace_block/block_256",
        denominator: "micro/laplace_block/scalar_256",
    },
    // Serving-tier gates (ISSUE 7): both sides of each ratio come from the
    // same run of `streaming_serving`, so the ratios are hardware-neutral.
    // Sustained: double-buffered serving must keep its coalescing edge
    // over the stop-the-world splice cycle (≥2× at recording time; the
    // gate allows the recorded ~6× edge to erode to ~4× before failing).
    Gate {
        name: "serving sustained double-buffered vs stop-the-world",
        numerator: "micro/streaming_serving/sustained_double_buffered",
        denominator: "micro/streaming_serving/sustained_stop_the_world",
    },
    // Tail latency: a reader's p95 cycle must stay bounded by query cost,
    // not merge cost — readers never wait on a splice.
    Gate {
        name: "serving p95 window double-buffered vs stop-the-world",
        numerator: "micro/streaming_serving/worst_window_double_buffered",
        denominator: "micro/streaming_serving/worst_window_stop_the_world",
    },
    // Multi-process serving gates (ISSUE 8): all legs come from the same
    // run under the same bounded-staleness contract (every cycle's deltas
    // published cluster-wide before the cycle ends), so merge counts are
    // pinned and the ratios are hardware-neutral.
    //
    // Ingest scaling — the headline: partitioning the update stream means
    // 4 shard workers splice ~¼-size graphs (≈ one full pass of total
    // work) where 4 full replicas splice the full graph 4×. Recorded at
    // ~4.7× on a single core; ≥2× holds on any host because it is a
    // work-multiplier, not a parallelism effect. The gate trips when the
    // sharded deployment loses that edge.
    Gate {
        name: "cluster 4-worker sharded vs 4-worker replicated ingest",
        numerator: "micro/streaming_serving/sustained_cluster_4worker_sharded",
        denominator: "micro/streaming_serving/sustained_cluster_4worker_replicated",
    },
    // Fan-out overhead: a 4-shard query fans round 2 to every owner, and
    // that coordination tax must stay bounded next to a single worker
    // owning the whole graph. Recorded at ~1.17× on a single core (total
    // splice+query work is conserved under sharding; a multi-core host
    // overlaps the per-shard work and drives this below 1).
    Gate {
        name: "cluster 4-worker sharded vs 1-worker front",
        numerator: "micro/streaming_serving/sustained_cluster_4worker_sharded",
        denominator: "micro/streaming_serving/sustained_cluster_1worker",
    },
    // Persistence gates (ISSUE 9): both sides of each ratio come from the
    // same run, so the ratios are hardware-neutral.
    //
    // Fast restart — adopting a binary snapshot (read + checksum validate
    // + install pre-packed bitmaps into the adjacency store) must keep
    // its edge over the cold restart (read text, parse, CSR build, warm
    // pass over both layers). Recorded at 5.51x; the ≥5x acceptance
    // floor erodes to the gate's 1.5x tolerance before failing.
    Gate {
        name: "snapshot load vs cold text build (fast restart)",
        numerator: "micro/streaming_serving/snapshot_load",
        denominator: "micro/streaming_serving/cold_text_build",
    },
    // Cluster restart — spawning 4 shard workers from per-shard restricted
    // snapshot files (path-only BootstrapSnapshot frames; the coordinator
    // reuses the files across restarts behind a byte-exact manifest) must
    // keep beating the edge-frame bootstrap that ships every shard's edge
    // list over its socket. Recorded at 1.29x.
    Gate {
        name: "cluster snapshot bootstrap vs edge-frame bootstrap",
        numerator: "micro/streaming_serving/spawn_bootstrap_snapshot",
        denominator: "micro/streaming_serving/spawn_bootstrap_frames",
    },
    // Live-rebalance gate (ISSUE 10): a query issued between rebalance
    // steps must stay bounded by query cost — the heavy work (snapshot
    // capture, shard-file cuts, bootstrap, tail replay) happens inside
    // the steps, never inside a reader's critical path. Recorded at
    // ~3.3× the steady mean (the worst sample lands right after the
    // cutover swap: cold worker caches plus the first pump of the
    // backlog) — a reader paying a full splice or snapshot cut would
    // blow far past the tolerance on this ratio.
    Gate {
        name: "serving worst mid-rebalance query vs steady query",
        numerator: "micro/streaming_serving/rebalance_worst_query",
        denominator: "micro/streaming_serving/rebalance_steady_query",
    },
];

/// Gates on a **measured value itself**, not a ratio: the benchmark
/// reports a count disguised as a raw `ns` value, and the gate fails on
/// anything but exactly zero. Unlike [`check`]'s ratio lookups (which
/// reject non-positive values as "missing"), these are read raw — zero
/// is the expected reading, not an absent one.
const ZERO_GATES: &[(&str, &str)] = &[(
    "live rebalance serves with zero failed queries",
    "micro/streaming_serving/rebalance_failed_queries",
)];

/// One line describing the CPU tier the dispatched kernels run on — printed
/// at the top of the report so a regression can be read in context of the
/// hardware that produced the log.
fn cpu_feature_header() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        format!(
            "bench-check: cpu features avx2={} popcnt={}, active popcount kernel `{}`",
            std::arch::is_x86_feature_detected!("avx2"),
            std::arch::is_x86_feature_detected!("popcnt"),
            bigraph::bitset::active_popcount_kernel(),
        )
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        format!(
            "bench-check: non-x86_64 host, active popcount kernel `{}`",
            bigraph::bitset::active_popcount_kernel(),
        )
    }
}

/// Parses the baseline JSON's `results` array into `id -> mean_ns`.
fn parse_baseline(json: &str) -> Result<HashMap<String, f64>, String> {
    let value: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let results = value
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or("baseline has no `results` array")?;
    let mut out = HashMap::new();
    for entry in results {
        let (Some(id), Some(mean)) = (
            entry.get("id").and_then(|v| v.as_str()),
            entry.get("mean_ns").and_then(serde_json::Value::as_f64),
        ) else {
            return Err("baseline entry without `id` + numeric `mean_ns`".into());
        };
        out.insert(id.to_string(), mean);
    }
    Ok(out)
}

/// Parses the criterion stub's stdout (`bench: <id>  <t> <unit>/iter ...`)
/// into `id -> mean_ns`.
fn parse_bench_log(log: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in log.lines() {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("bench:") {
            continue;
        }
        let (Some(id), Some(value), Some(unit)) = (tokens.next(), tokens.next(), tokens.next())
        else {
            continue;
        };
        let Ok(t) = value.parse::<f64>() else {
            continue;
        };
        let ns = match unit.split('/').next() {
            Some("ns") => t,
            Some("µs") | Some("us") => t * 1e3,
            Some("ms") => t * 1e6,
            Some("s") => t * 1e9,
            _ => continue,
        };
        out.insert(id.to_string(), ns);
    }
    out
}

/// Evaluates every gate; returns human-readable failures.
fn check(
    baseline: &HashMap<String, f64>,
    measured: &HashMap<String, f64>,
) -> Result<Vec<String>, String> {
    let lookup = |map: &HashMap<String, f64>, id: &str, what: &str| -> Result<f64, String> {
        map.get(id)
            .copied()
            .filter(|&v| v > 0.0)
            .ok_or_else(|| format!("{what} is missing benchmark `{id}`"))
    };
    let mut failures = Vec::new();
    for gate in GATES {
        let base_ratio = lookup(baseline, gate.numerator, "baseline")?
            / lookup(baseline, gate.denominator, "baseline")?;
        let now_ratio = lookup(measured, gate.numerator, "bench log")?
            / lookup(measured, gate.denominator, "bench log")?;
        let regression = now_ratio / base_ratio;
        let verdict = if regression > TOLERANCE { "FAIL" } else { "ok" };
        println!(
            "bench-check [{verdict:>4}] {}: ratio {:.3} vs baseline {:.3} ({}{:.2}x)",
            gate.name,
            now_ratio,
            base_ratio,
            if regression >= 1.0 { "+" } else { "" },
            regression,
        );
        if regression > TOLERANCE {
            failures.push(format!(
                "{}: measured ratio {:.3} regressed {:.2}x past baseline {:.3} (tolerance {}x)",
                gate.name, now_ratio, regression, base_ratio, TOLERANCE
            ));
        }
    }
    for &(name, id) in ZERO_GATES {
        let value = measured
            .get(id)
            .copied()
            .ok_or_else(|| format!("bench log is missing benchmark `{id}`"))?;
        let verdict = if value == 0.0 { "ok" } else { "FAIL" };
        println!("bench-check [{verdict:>4}] {name}: measured {value} (must be 0)");
        if value != 0.0 {
            failures.push(format!("{name}: measured {value}, must be exactly 0"));
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, log_path] = args.as_slice() else {
        eprintln!("usage: bench-check <BENCH_micro.json> <bench.log>");
        return ExitCode::from(2);
    };
    println!("{}", cpu_feature_header());
    let run = || -> Result<Vec<String>, String> {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
        let log = std::fs::read_to_string(log_path)
            .map_err(|e| format!("cannot read {log_path}: {e}"))?;
        check(&parse_baseline(&baseline)?, &parse_bench_log(&log))
    };
    match run() {
        Ok(failures) if failures.is_empty() => {
            println!(
                "bench-check: all {} ratio gates within {TOLERANCE}x, {} zero gates clean",
                GATES.len(),
                ZERO_GATES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("bench-check FAILURE: {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-check error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> HashMap<String, f64> {
        let mut m = HashMap::new();
        m.insert("micro/engine_cached_batch/warm_multi_target".into(), 1.94e6);
        m.insert(
            "micro/engine_cached_batch/uncached_multi_target".into(),
            11.60e6,
        );
        m.insert(
            "micro/engine_cached_batch/warm_single_target".into(),
            0.49e6,
        );
        m.insert(
            "micro/engine_cached_batch/uncached_single_target".into(),
            2.87e6,
        );
        m.insert(
            "micro/engine_cached_batch/cold_single_target".into(),
            4.03e6,
        );
        m.insert("micro/perturb_sparse_large/skip/1".into(), 0.206e6);
        m.insert("micro/perturb_sparse_large/packed/1".into(), 0.202e6);
        m.insert("micro/perturb_sparse_large/dense/1".into(), 1.06e6);
        m.insert("micro/perturb_sparse_large/skip/4".into(), 0.021e6);
        m.insert("micro/perturb_sparse_large/packed/4".into(), 0.022e6);
        m.insert("micro/perturb_sparse_large/dense/4".into(), 0.61e6);
        m.insert("micro/popcount_kernels/dispatched".into(), 0.22e3);
        m.insert("micro/popcount_kernels/scalar".into(), 0.90e3);
        m.insert("micro/rng_setup/batched_256".into(), 1.1e3);
        m.insert("micro/rng_setup/scalar_256".into(), 2.6e3);
        m.insert("micro/laplace_block/block_256".into(), 1.6e3);
        m.insert("micro/laplace_block/scalar_256".into(), 2.4e3);
        m.insert(
            "micro/streaming_serving/sustained_double_buffered".into(),
            3.3e6,
        );
        m.insert(
            "micro/streaming_serving/sustained_stop_the_world".into(),
            20.0e6,
        );
        m.insert(
            "micro/streaming_serving/worst_window_double_buffered".into(),
            5.4e6,
        );
        m.insert(
            "micro/streaming_serving/worst_window_stop_the_world".into(),
            22.0e6,
        );
        m.insert(
            "micro/streaming_serving/sustained_cluster_1worker".into(),
            20.0e6,
        );
        m.insert(
            "micro/streaming_serving/sustained_cluster_4worker_sharded".into(),
            23.3e6,
        );
        m.insert(
            "micro/streaming_serving/sustained_cluster_4worker_replicated".into(),
            109.0e6,
        );
        m.insert("micro/streaming_serving/cold_text_build".into(), 220.1e6);
        m.insert("micro/streaming_serving/snapshot_load".into(), 40.0e6);
        m.insert(
            "micro/streaming_serving/spawn_bootstrap_frames".into(),
            157.1e6,
        );
        m.insert(
            "micro/streaming_serving/spawn_bootstrap_snapshot".into(),
            121.9e6,
        );
        m.insert(
            "micro/streaming_serving/rebalance_steady_query".into(),
            5.0e6,
        );
        m.insert(
            "micro/streaming_serving/rebalance_worst_query".into(),
            8.0e6,
        );
        m.insert(
            "micro/streaming_serving/rebalance_failed_queries".into(),
            0.0,
        );
        m
    }

    #[test]
    fn cpu_header_names_a_selectable_kernel() {
        let header = cpu_feature_header();
        assert!(
            ["avx2", "popcnt", "portable"]
                .iter()
                .any(|k| header.contains(&format!("`{k}`"))),
            "{header}"
        );
    }

    #[test]
    fn log_parser_reads_stub_output_in_every_unit() {
        let log = "\
bench: micro/perturb_sparse_large/skip/4                     56.74 µs/iter (1762.3 Melem/s)
bench: micro/noisy_intersection/packed_popcount             1130.0 ns/iter
noise line that is ignored
bench: micro/engine_cached_batch/warm_multi_target              3.68 ms/iter (0.2 Melem/s)
bench: micro/slow_thing                                         1.20 s/iter
bench: micro/streaming_serving/sustained_double_buffered          3.326 ms/iter
";
        let parsed = parse_bench_log(log);
        assert_eq!(parsed["micro/perturb_sparse_large/skip/4"], 56_740.0);
        assert_eq!(parsed["micro/noisy_intersection/packed_popcount"], 1130.0);
        assert_eq!(
            parsed["micro/engine_cached_batch/warm_multi_target"],
            3_680_000.0
        );
        assert_eq!(parsed["micro/slow_thing"], 1_200_000_000.0);
        // The hand-rolled streaming_serving harness pads its ids; the
        // whitespace-splitting parser must read it like any stub line.
        assert_eq!(
            parsed["micro/streaming_serving/sustained_double_buffered"],
            3_326_000.0
        );
        assert_eq!(parsed.len(), 5);
    }

    #[test]
    fn baseline_parser_reads_bench_micro_schema() {
        let json = r#"{
            "schema": "ldp-cne/bench-baseline/v1",
            "results": [
                {"id": "a/b", "mean_ns": 123.5, "throughput": "x"},
                {"id": "c/d", "mean_ns": 4.0}
            ]
        }"#;
        let parsed = parse_baseline(json).unwrap();
        assert_eq!(parsed["a/b"], 123.5);
        assert_eq!(parsed["c/d"], 4.0);
    }

    #[test]
    fn repo_baseline_contains_every_gated_id() {
        // The gate must stay in sync with BENCH_micro.json at the repo root.
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_micro.json"
        ))
        .expect("BENCH_micro.json at repo root");
        let parsed = parse_baseline(&json).unwrap();
        for gate in GATES {
            assert!(parsed.contains_key(gate.numerator), "{}", gate.numerator);
            assert!(
                parsed.contains_key(gate.denominator),
                "{}",
                gate.denominator
            );
        }
        for &(_, id) in ZERO_GATES {
            assert!(parsed.contains_key(id), "{id}");
        }
    }

    #[test]
    fn matching_ratios_pass_and_regressions_fail() {
        let base = baseline();
        // Different hardware, same ratios (everything 3x slower): pass.
        let mut measured: HashMap<String, f64> =
            base.iter().map(|(k, v)| (k.clone(), v * 3.0)).collect();
        assert!(check(&base, &measured).unwrap().is_empty());
        // Warm multi-target loses its edge (2x past tolerance): fail.
        *measured
            .get_mut("micro/engine_cached_batch/warm_multi_target")
            .unwrap() *= 2.0;
        let failures = check(&base, &measured).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("warm multi-target"));
    }

    #[test]
    fn serving_gates_catch_a_lost_coalescing_edge() {
        let base = baseline();
        // Same hardware, but double-buffered serving drops to parity with
        // the stop-the-world cycle (coalescing edge gone): the sustained
        // gate fails, the tail-window gate (untouched) stays green.
        let mut measured = base.clone();
        *measured
            .get_mut("micro/streaming_serving/sustained_double_buffered")
            .unwrap() = 20.0e6;
        let failures = check(&base, &measured).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("serving sustained"));
    }

    #[test]
    fn cluster_gates_catch_a_lost_ingest_scaling_edge() {
        let base = baseline();
        // The sharded deployment degrades to replicated-ingest cost (its
        // update-stream partitioning edge gone): both cluster gates fail
        // — against the replicated leg and against the 1-worker front —
        // while every single-process gate stays green.
        let mut measured = base.clone();
        *measured
            .get_mut("micro/streaming_serving/sustained_cluster_4worker_sharded")
            .unwrap() = 109.0e6;
        let failures = check(&base, &measured).unwrap();
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().all(|f| f.contains("cluster 4-worker")));
    }

    #[test]
    fn snapshot_gates_catch_a_lost_restart_edge() {
        let base = baseline();
        // The snapshot loader degrades to cold-build cost (bulk adoption
        // edge gone) and the snapshot cluster spawn to edge-frame cost
        // (shard-file reuse edge gone): both persistence gates fail,
        // everything else stays green.
        let mut measured = base.clone();
        *measured
            .get_mut("micro/streaming_serving/snapshot_load")
            .unwrap() = 220.1e6;
        *measured
            .get_mut("micro/streaming_serving/spawn_bootstrap_snapshot")
            .unwrap() = 250.0e6;
        let failures = check(&base, &measured).unwrap();
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.contains("fast restart")));
        assert!(failures.iter().any(|f| f.contains("snapshot bootstrap")));
    }

    #[test]
    fn missing_benchmarks_are_errors_not_passes() {
        let base = baseline();
        let measured = HashMap::new();
        assert!(check(&base, &measured).is_err());
    }

    #[test]
    fn rebalance_gates_catch_downtime_and_reader_stalls() {
        let base = baseline();
        // A single failed query during the live rebalance: the zero gate
        // fails no matter how small the count.
        let mut measured = base.clone();
        *measured
            .get_mut("micro/streaming_serving/rebalance_failed_queries")
            .unwrap() = 1.0;
        let failures = check(&base, &measured).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("zero failed queries"));
        // A mid-rebalance query that pays a splice (~10x the steady mean
        // instead of the recorded ~1.6x): the ratio gate fails.
        let mut measured = base.clone();
        *measured
            .get_mut("micro/streaming_serving/rebalance_worst_query")
            .unwrap() = 50.0e6;
        let failures = check(&base, &measured).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("mid-rebalance"));
    }

    #[test]
    fn zero_gate_reads_raw_values_missing_is_an_error() {
        let base = baseline();
        // The ratio lookups treat non-positive values as missing; the
        // zero gate must NOT — 0 is its passing reading — but an absent
        // line is still an error, never a silent pass.
        let mut measured = base.clone();
        measured.remove("micro/streaming_serving/rebalance_failed_queries");
        let err = check(&base, &measured).unwrap_err();
        assert!(err.contains("rebalance_failed_queries"), "{err}");
    }
}

//! Shared helpers for the benchmark harness.
//!
//! Every benchmark target does two things:
//!
//! 1. **Regenerate the paper artifact**: run the corresponding experiment from
//!    the [`eval`] crate once at "bench scale" (larger than the unit-test
//!    smoke configs, still laptop-friendly) and print the resulting tables to
//!    stdout — this is the reproduction of the figure/table itself.
//! 2. **Measure**: benchmark the per-query kernel underlying the experiment
//!    with Criterion so regressions in the hot paths are visible.

use eval::experiments::Context;
use eval::Table;

/// The dataset scale used by the benchmark harness.
///
/// Large enough that the smallest Table 2 datasets keep their original sizes
/// and the one-round/multi-round gap is pronounced; small enough that a full
/// `cargo bench` finishes in minutes on a laptop.
pub const BENCH_MAX_EDGES: usize = 100_000;

/// Number of query pairs per dataset used when regenerating figures.
///
/// The paper uses 100; 24 keeps the full benchmark suite fast while leaving
/// the orderings the figures exhibit clearly visible.
pub const BENCH_PAIRS: usize = 24;

/// The experiment context shared by all benchmark targets.
#[must_use]
pub fn bench_context() -> Context {
    Context {
        catalog: datasets::Catalog::scaled(BENCH_MAX_EDGES),
        seed: 0x00BE_7C42,
        pairs_per_dataset: BENCH_PAIRS,
    }
}

/// Prints the regenerated tables of one experiment with a banner.
pub fn print_tables(banner: &str, tables: &[Table]) {
    println!("\n################ {banner} ################");
    for table in tables {
        println!("{table}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_context_is_well_formed() {
        let ctx = bench_context();
        assert_eq!(ctx.pairs_per_dataset, BENCH_PAIRS);
        assert_eq!(ctx.catalog.max_edges(), Some(BENCH_MAX_EDGES));
    }

    #[test]
    fn print_tables_does_not_panic() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into()]);
        print_tables("banner", &[t]);
    }
}

//! The mutable-graph benchmark: update-batch splice throughput, precise
//! invalidation + warm re-query, and the byte-capped store under pressure.
//!
//! Workload shape matches `engine_cached_batch` (n = 100 000 items, dense
//! 12 000-degree candidates) so the two groups share a frame of reference:
//! the question here is what *mutation* costs on top of warm serving —
//! splicing a batch into the CSR, dropping exactly the touched bitmaps,
//! and re-packing them on the next query.

use bigraph::{BipartiteGraph, Layer, UpdateBatch};
use cne::engine::EstimationEngine;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_ITEMS: usize = 100_000;
const N_CANDIDATES: u32 = 200;
const CANDIDATE_DEGREE: u32 = 12_000;
const EPSILON: f64 = 2.0;
const SEED: u64 = 0x00CA_C4E6;
const BATCH_EDGES: u32 = 64;

/// Candidates `1..=N_CANDIDATES`, target 0, all with `CANDIDATE_DEGREE`
/// spread-out item neighbors (same coprime-stride shape as
/// `engine_cached_batch`).
fn screening_graph() -> BipartiteGraph {
    let n_upper = (N_CANDIDATES + 1) as usize;
    let mut edges = Vec::with_capacity(n_upper * CANDIDATE_DEGREE as usize);
    for u in 0..n_upper as u32 {
        for k in 0..CANDIDATE_DEGREE {
            edges.push((
                u,
                (u.wrapping_mul(977).wrapping_add(k * 19)) % N_ITEMS as u32,
            ));
        }
    }
    BipartiteGraph::from_edges(n_upper, N_ITEMS, edges).expect("valid edges")
}

/// A batch of `BATCH_EDGES` edge toggles touching `spread` distinct
/// candidates, phase-shifted by `round` so repeated application keeps
/// toggling different edges.
fn update_batch(round: u32, spread: u32) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(BATCH_EDGES as usize);
    for k in 0..BATCH_EDGES {
        let u = 1 + (k % spread);
        let v = (u
            .wrapping_mul(977)
            .wrapping_add((round * BATCH_EDGES + k) * 37))
            % N_ITEMS as u32;
        // Alternate adds and removes; either direction is a single splice.
        if k % 2 == 0 {
            batch.add_edge(u, v);
        } else {
            batch.remove_edge(u, v);
        }
    }
    batch
}

fn bench_streaming_updates(c: &mut Criterion) {
    // Single-threaded for the same reason as engine_cached_batch: the
    // numbers should isolate splice/invalidation cost, not parallelism.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let candidates: Vec<u32> = (1..=N_CANDIDATES).collect();

    let mut group = c.benchmark_group("micro/streaming_updates");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(BATCH_EDGES)));

    // The raw splice: a 64-edge batch into the 2.4M-edge CSR.
    group.bench_function("apply_batch_64_edges", |b| {
        let mut engine = EstimationEngine::from_graph(screening_graph());
        let mut round = 0u32;
        b.iter(|| {
            let applied = engine
                .apply_updates(&update_batch(round, 8))
                .expect("valid batch");
            round = round.wrapping_add(1);
            criterion::black_box(applied.edges_added + applied.edges_removed)
        });
    });

    // Splice + invalidation + warm re-query: the full between-rounds cycle
    // of a streaming service. Only 8 of 200 candidates are touched per
    // batch, so precise invalidation keeps 96% of the cache warm.
    group.throughput(Throughput::Elements(u64::from(N_CANDIDATES)));
    group.bench_function("update_then_requery_warm", |b| {
        let mut engine = EstimationEngine::from_graph(screening_graph());
        engine.warm(Layer::Upper);
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut round = 0u32;
        b.iter(|| {
            engine
                .apply_updates(&update_batch(round, 8))
                .expect("valid batch");
            round = round.wrapping_add(1);
            let report = engine
                .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, &mut rng)
                .expect("valid batch");
            criterion::black_box(report.estimates.len())
        });
    });

    // The same cycle on a byte-capped store sized for half the dense
    // candidates: admission declines + LRU maintenance in the loop.
    group.bench_function("update_then_requery_capped", |b| {
        let words_bytes = N_ITEMS.div_ceil(64) * 8;
        let cap = words_bytes * (N_CANDIDATES as usize / 2);
        let mut engine = EstimationEngine::from_graph_with_cache_budget(screening_graph(), cap);
        engine.warm(Layer::Upper);
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut round = 0u32;
        b.iter(|| {
            engine
                .apply_updates(&update_batch(round, 8))
                .expect("valid batch");
            round = round.wrapping_add(1);
            let report = engine
                .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, &mut rng)
                .expect("valid batch");
            criterion::black_box(report.estimates.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_streaming_updates);
criterion_main!(benches);

//! Regenerates Figure 7 (effect of ε on the mean absolute error) and
//! benchmarks single estimates across the ε range.

use bench::{bench_context, print_tables};
use bigraph::Layer;
use cne::{CommonNeighborEstimator, MultiRDS, OneR, Query};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use eval::experiments::fig07_epsilon;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig07(c: &mut Criterion) {
    let mut context = bench_context();
    // The epsilon sweep multiplies datasets x budgets x algorithms, so use a
    // slightly smaller pair count to keep the regeneration quick.
    context.pairs_per_dataset = 12;
    let config = fig07_epsilon::Config {
        context,
        ..Default::default()
    };
    let tables = fig07_epsilon::run(&config);
    print_tables("Figure 7: effect of the privacy budget", &tables);

    // Kernel: one estimate at the two ends of the epsilon range.
    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::SO, 1)
        .expect("SO profile exists");
    let graph = dataset.graph;
    let query = Query::new(Layer::Upper, 0, 1);
    let mut group = c.benchmark_group("fig07/single_estimate_so");
    group.sample_size(10);
    for eps in [1.0, 3.0] {
        group.bench_function(format!("oner_eps{eps}"), |b| {
            let mut rng = ChaCha12Rng::seed_from_u64(5);
            b.iter(|| {
                criterion::black_box(
                    OneR::default()
                        .estimate(&graph, &query, eps, &mut rng)
                        .expect("estimation succeeds")
                        .estimate,
                )
            });
        });
        group.bench_function(format!("multir_ds_eps{eps}"), |b| {
            let mut rng = ChaCha12Rng::seed_from_u64(5);
            b.iter(|| {
                criterion::black_box(
                    MultiRDS::default()
                        .estimate(&graph, &query, eps, &mut rng)
                        .expect("estimation succeeds")
                        .estimate,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig07);
criterion_main!(benches);

//! Regenerates Figure 9 (robustness to degree imbalance) and benchmarks the
//! imbalanced-pair sampler together with the three multi-round estimators.

use bench::{bench_context, print_tables};
use bigraph::{sampling, Layer};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use eval::experiments::fig09_imbalance;
use eval::runner::{evaluate_on_pairs, AlgorithmSelection};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig09(c: &mut Criterion) {
    let config = fig09_imbalance::Config {
        context: bench_context(),
        ..Default::default()
    };
    let tables = fig09_imbalance::run(&config);
    print_tables("Figure 9: robustness to degree imbalance", &tables);

    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::BX, 1)
        .expect("BX profile exists");
    let graph = dataset.graph;
    let mut rng = ChaCha12Rng::seed_from_u64(9);
    let pairs =
        sampling::imbalanced_pairs(&graph, Layer::Upper, 100.0, 10, &mut rng).expect("sampleable");

    let mut group = c.benchmark_group("fig09/imbalanced_pairs_bx");
    group.sample_size(10);
    group.bench_function("sample_kappa100_pairs", |b| {
        b.iter(|| {
            let mut rng = ChaCha12Rng::seed_from_u64(10);
            criterion::black_box(
                sampling::imbalanced_pairs(&graph, Layer::Upper, 100.0, 10, &mut rng)
                    .expect("sampleable")
                    .len(),
            )
        });
    });
    if !pairs.is_empty() {
        for selection in [
            AlgorithmSelection::MultiRSS {
                epsilon1_fraction: 0.5,
            },
            AlgorithmSelection::MultiRDSBasic {
                epsilon1_fraction: 0.5,
            },
            AlgorithmSelection::MultiRDS,
        ] {
            group.bench_function(selection.kind().paper_name(), |b| {
                b.iter(|| {
                    criterion::black_box(
                        evaluate_on_pairs(&graph, &pairs, &selection, 2.0, 1)
                            .expect("evaluation succeeds")
                            .metrics,
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);

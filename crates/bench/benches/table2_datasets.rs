//! Regenerates Table 2 (dataset statistics) and benchmarks dataset generation.

use bench::{bench_context, print_tables};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::{Catalog, DatasetCode};
use eval::experiments::table2_datasets;

fn bench_table2(c: &mut Criterion) {
    let config = table2_datasets::Config {
        context: bench_context(),
        datasets: vec![],
    };
    let tables = table2_datasets::run(&config);
    print_tables("Table 2: dataset statistics", &tables);

    let mut group = c.benchmark_group("table2/generation");
    group.sample_size(10);
    let catalog = Catalog::scaled(bench::BENCH_MAX_EDGES);
    for code in [DatasetCode::RM, DatasetCode::BX, DatasetCode::OG] {
        group.bench_function(format!("generate_{code}"), |b| {
            b.iter(|| {
                let ds = catalog.generate(code, 7).expect("profile exists");
                criterion::black_box(ds.graph.n_edges())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);

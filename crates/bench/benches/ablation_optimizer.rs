//! Ablation: the (ε₁, α) optimiser.
//!
//! Compares three strategies for allocating the MultiR-DS budget —
//! the Newton/golden-section optimiser used by the implementation, a dense
//! grid search (the brute-force reference), and the fixed even split — both
//! in solution quality (printed table) and in running time (Criterion).

use cne::loss::double_source_l2;
use cne::optimizer::{optimal_alpha, optimize_double_source};
use criterion::{criterion_group, criterion_main, Criterion};
use eval::table::{fmt_f64, Table};

/// Brute-force reference: dense grid over ε₁ and α.
fn grid_search(du: f64, dw: f64, eps: f64, steps: usize) -> (f64, f64, f64) {
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for i in 1..steps {
        let e1 = eps * i as f64 / steps as f64;
        let e2 = eps - e1;
        for j in 0..=steps {
            let alpha = j as f64 / steps as f64;
            let loss = double_source_l2(du, dw, alpha, e1, e2);
            if loss < best.0 {
                best = (loss, e1, alpha);
            }
        }
    }
    best
}

fn bench_ablation(c: &mut Criterion) {
    // ---- Solution quality table -------------------------------------------
    let mut table = Table::new(
        "Ablation: budget-allocation strategies (loss of f*, eps = 2)",
        &[
            "d_u",
            "d_w",
            "optimiser",
            "grid(400x100)",
            "even split (alpha=0.5)",
        ],
    );
    for (du, dw) in [(5.0, 10.0), (5.0, 100.0), (200.0, 3.0), (500.0, 500.0)] {
        let opt = optimize_double_source(du, dw, 2.0);
        let (grid_loss, _, _) = grid_search(du, dw, 2.0, 200);
        let even = double_source_l2(du, dw, 0.5, 1.0, 1.0);
        table.push_row(vec![
            fmt_f64(du, 0),
            fmt_f64(dw, 0),
            fmt_f64(opt.loss, 4),
            fmt_f64(grid_loss, 4),
            fmt_f64(even, 4),
        ]);
    }
    println!("\n################ Ablation: optimiser quality ################");
    println!("{table}");

    // ---- Running time ------------------------------------------------------
    let mut group = c.benchmark_group("ablation/optimizer");
    group.bench_function("newton_golden", |b| {
        b.iter(|| criterion::black_box(optimize_double_source(5.0, 100.0, 2.0)));
    });
    group.bench_function("grid_200", |b| {
        b.iter(|| criterion::black_box(grid_search(5.0, 100.0, 2.0, 200)));
    });
    group.bench_function("closed_form_alpha_only", |b| {
        b.iter(|| criterion::black_box(optimal_alpha(5.0, 100.0, 1.0, 1.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Regenerates Figure 6 (mean absolute error and time per dataset at ε = 2)
//! and benchmarks the full per-pair evaluation pipeline on one dataset.

use bench::{bench_context, print_tables};
use bigraph::{sampling, Layer};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use eval::experiments::fig06_datasets;
use eval::runner::{evaluate_on_pairs, AlgorithmSelection};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig06(c: &mut Criterion) {
    let config = fig06_datasets::Config {
        context: bench_context(),
        ..Default::default()
    };
    let tables = fig06_datasets::run(&config);
    print_tables("Figure 6: error and time per dataset (eps = 2)", &tables);

    // Kernel: evaluating a batch of pairs with each algorithm on RM.
    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::RM, 1)
        .expect("RM profile exists");
    let graph = dataset.graph;
    let mut rng = ChaCha12Rng::seed_from_u64(2);
    let pairs = sampling::uniform_pairs(&graph, Layer::Upper, 10, &mut rng).expect("sampleable");

    let mut group = c.benchmark_group("fig06/evaluate_10_pairs_rm");
    group.sample_size(10);
    for selection in AlgorithmSelection::figure6_set() {
        group.bench_function(selection.kind().paper_name(), |b| {
            b.iter(|| {
                criterion::black_box(
                    evaluate_on_pairs(&graph, &pairs, &selection, 2.0, 3)
                        .expect("evaluation succeeds")
                        .metrics,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig06);
criterion_main!(benches);

//! Regenerates Figure 10 (communication costs) and benchmarks the
//! noisy-neighbor-list generation that dominates the message volume.

use bench::{bench_context, print_tables};
use bigraph::Layer;
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use eval::experiments::fig10_communication;
use ldp::budget::PrivacyBudget;
use ldp::noisy_graph::NoisyNeighbors;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig10(c: &mut Criterion) {
    let config = fig10_communication::Config {
        context: bench_context(),
        ..Default::default()
    };
    let tables = fig10_communication::run(&config);
    print_tables("Figure 10: communication costs", &tables);

    // Kernel: generating (and sizing) one noisy neighbor list at different
    // budgets — this upload dominates every algorithm's message volume.
    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::TM, 1)
        .expect("TM profile exists");
    let graph = dataset.graph;
    let mut group = c.benchmark_group("fig10/noisy_list_generation_tm");
    group.sample_size(20);
    for eps in [1.0, 2.0, 3.0] {
        group.bench_function(format!("perturb_list_eps{eps}"), |b| {
            let budget = PrivacyBudget::new(eps).expect("valid budget");
            let mut rng = ChaCha12Rng::seed_from_u64(10);
            b.iter(|| {
                let list = NoisyNeighbors::generate(&graph, Layer::Upper, 0, budget, &mut rng);
                criterion::black_box(list.message_bytes())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);

//! Ablation: the expanded closed form of the OneR estimator.
//!
//! Section 3.2 of the paper notes that the `O(n₁)` sum over all candidate
//! vertices can be replaced by a closed form in the noisy intersection and
//! union sizes. This benchmark measures the curator-side cost of both
//! evaluations (the vertex-side randomized response is identical).

use bench::bench_context;
use bigraph::Layer;
use cne::{CommonNeighborEstimator, OneR, Query};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_oner_forms(c: &mut Criterion) {
    let context = bench_context();
    let mut group = c.benchmark_group("ablation/oner_form");
    group.sample_size(20);
    for code in [DatasetCode::RM, DatasetCode::WC] {
        let dataset = context.catalog.generate(code, 1).expect("profile exists");
        let graph = dataset.graph;
        let query = Query::new(Layer::Upper, 0, 1);
        for (label, algo) in [
            (
                "closed_form",
                OneR {
                    use_dense_sum: false,
                },
            ),
            (
                "dense_sum",
                OneR {
                    use_dense_sum: true,
                },
            ),
        ] {
            group.bench_function(format!("{code}/{label}"), |b| {
                let mut rng = ChaCha12Rng::seed_from_u64(21);
                b.iter(|| {
                    criterion::black_box(
                        algo.estimate(&graph, &query, 2.0, &mut rng)
                            .expect("estimation succeeds")
                            .estimate,
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_oner_forms);
criterion_main!(benches);

//! Regenerates Figure 2 (estimate distributions on rmwiki at ε = 1) and
//! benchmarks a single estimation round of each algorithm on that workload.

use bench::{bench_context, print_tables};
use bigraph::Layer;
use cne::{CommonNeighborEstimator, MultiRDS, MultiRSS, Naive, OneR, Query};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use eval::experiments::fig02_distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig02(c: &mut Criterion) {
    let config = fig02_distribution::Config {
        context: bench_context(),
        epsilon: 1.0,
        runs: 1_000,
        kappa: 20.0,
    };
    let tables = fig02_distribution::run(&config);
    print_tables(
        "Figure 2: estimate distributions (rmwiki-like, eps = 1)",
        &tables,
    );

    // Kernel: one estimate per algorithm on the same dataset/pair.
    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::RM, config.context.seed)
        .expect("RM profile exists");
    let graph = dataset.graph;
    let query = Query::new(Layer::Upper, 0, 1);

    let mut group = c.benchmark_group("fig02/single_estimate");
    group.sample_size(20);
    let algorithms: Vec<(&str, Box<dyn CommonNeighborEstimator>)> = vec![
        ("naive", Box::new(Naive)),
        ("oner", Box::new(OneR::default())),
        ("multir_ss", Box::new(MultiRSS::default())),
        ("multir_ds", Box::new(MultiRDS::default())),
    ];
    for (name, algo) in &algorithms {
        group.bench_function(*name, |b| {
            let mut rng = ChaCha12Rng::seed_from_u64(11);
            b.iter(|| {
                let report = algo
                    .estimate(&graph, &query, 1.0, &mut rng)
                    .expect("estimation succeeds");
                criterion::black_box(report.estimate)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig02);
criterion_main!(benches);

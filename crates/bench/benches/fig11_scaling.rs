//! Regenerates Figure 11 (effect of the number of vertices) and benchmarks
//! induced-subgraph sampling plus estimation at two graph scales.

use bench::{bench_context, print_tables};
use bigraph::{sampling, Layer};
use cne::{CommonNeighborEstimator, OneR, Query};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use eval::experiments::fig11_scaling;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig11(c: &mut Criterion) {
    let config = fig11_scaling::Config {
        context: bench_context(),
        ..Default::default()
    };
    let tables = fig11_scaling::run(&config);
    print_tables("Figure 11: effect of the number of vertices", &tables);

    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::TM, 1)
        .expect("TM profile exists");
    let graph = dataset.graph;

    let mut group = c.benchmark_group("fig11/scaling_tm");
    group.sample_size(10);
    group.bench_function("induced_subgraph_20pct", |b| {
        b.iter(|| {
            let mut rng = ChaCha12Rng::seed_from_u64(11);
            criterion::black_box(
                sampling::induced_subgraph(&graph, 0.2, &mut rng)
                    .expect("valid fraction")
                    .graph
                    .n_edges(),
            )
        });
    });
    for fraction in [0.2, 1.0] {
        let mut rng = ChaCha12Rng::seed_from_u64(12);
        let sub = sampling::induced_subgraph(&graph, fraction, &mut rng).expect("valid fraction");
        let subgraph = sub.graph;
        let query = Query::new(Layer::Upper, 0, 1);
        group.bench_function(format!("oner_estimate_at_{fraction}"), |b| {
            let mut rng = ChaCha12Rng::seed_from_u64(13);
            b.iter(|| {
                criterion::black_box(
                    OneR::default()
                        .estimate(&subgraph, &query, 2.0, &mut rng)
                        .expect("estimation succeeds")
                        .estimate,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);

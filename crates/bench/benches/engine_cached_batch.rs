//! The persistent-engine cache benchmark: cold vs warm [`AdjacencyStore`],
//! single- vs multi-target, against the uncached legacy batch path.
//!
//! Workload: a dense screening pool over an `n = 100_000`-item layer — 200
//! candidates of degree 12 000, i.e. every candidate is far past the packed
//! dispatch threshold (`degree > 2 · ⌈n/64⌉ ≈ 3 126`). On this shape the
//! uncached path re-packs every candidate's adjacency into a fresh
//! 1 563-word bitmap on **every** query, while the warm engine packs each
//! candidate once per graph and then runs pure popcount intersections.
//!
//! Acceptance bar (recorded in `BENCH_micro.json`): the warm multi-target
//! engine must be ≥ 2× faster than the uncached path on this workload.

use bigraph::{BipartiteGraph, Layer};
use cne::batch::BatchSingleSource;
use cne::engine::EstimationEngine;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_ITEMS: usize = 100_000;
const N_CANDIDATES: u32 = 200;
const N_TARGETS: u32 = 4;
const CANDIDATE_DEGREE: u32 = 12_000;
const EPSILON: f64 = 2.0;
const SEED: u64 = 0x00CA_C4E5;

/// Targets `0..N_TARGETS`, candidates `N_TARGETS..N_TARGETS+N_CANDIDATES`,
/// every vertex with `CANDIDATE_DEGREE` spread-out item neighbors.
fn screening_graph() -> BipartiteGraph {
    let n_upper = (N_TARGETS + N_CANDIDATES) as usize;
    let mut edges = Vec::with_capacity(n_upper * CANDIDATE_DEGREE as usize);
    for u in 0..n_upper as u32 {
        for k in 0..CANDIDATE_DEGREE {
            // A coprime stride keeps neighborhoods overlapping but distinct.
            edges.push((
                u,
                (u.wrapping_mul(977).wrapping_add(k * 19)) % N_ITEMS as u32,
            ));
        }
    }
    BipartiteGraph::from_edges(n_upper, N_ITEMS, edges).expect("valid edges")
}

fn bench_engine_cached_batch(c: &mut Criterion) {
    // Pin every fan-out to one worker: `estimate_many_targets` parallelizes
    // over targets while the uncached reference loops them sequentially, so
    // on a multicore machine rayon alone could fake the ≥2× acceptance
    // ratio with a stone-cold cache. Single-threaded, the warm-vs-uncached
    // comparison measures exactly the adjacency-cache reuse.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let g = screening_graph();
    let candidates: Vec<u32> = (N_TARGETS..N_TARGETS + N_CANDIDATES).collect();
    let targets: Vec<u32> = (0..N_TARGETS).collect();
    let algo = BatchSingleSource::default();

    let mut group = c.benchmark_group("micro/engine_cached_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(N_CANDIDATES)));

    // Legacy path: every call re-packs every dense candidate's adjacency.
    group.bench_function("uncached_single_target", |b| {
        let mut rng = StdRng::seed_from_u64(SEED);
        b.iter(|| {
            let report = algo
                .estimate_batch(&g, Layer::Upper, 0, &candidates, EPSILON, &mut rng)
                .expect("valid batch");
            criterion::black_box(report.estimates.len())
        });
    });

    // Cold engine: the store is rebuilt from scratch every call, so this
    // pays the cache-fill cost inside the measurement window.
    group.bench_function("cold_single_target", |b| {
        let mut rng = StdRng::seed_from_u64(SEED);
        b.iter(|| {
            let engine = EstimationEngine::new(&g);
            let report = engine
                .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, &mut rng)
                .expect("valid batch");
            criterion::black_box(report.estimates.len())
        });
    });

    // Warm engine: the steady state of a long-lived service.
    let engine = EstimationEngine::new(&g);
    engine.warm(Layer::Upper);
    group.bench_function("warm_single_target", |b| {
        let mut rng = StdRng::seed_from_u64(SEED);
        b.iter(|| {
            let report = engine
                .estimate_batch(Layer::Upper, 0, &candidates, EPSILON, &mut rng)
                .expect("valid batch");
            criterion::black_box(report.estimates.len())
        });
    });

    group.throughput(Throughput::Elements(u64::from(N_CANDIDATES * N_TARGETS)));
    group.bench_function("uncached_multi_target", |b| {
        let mut rng = StdRng::seed_from_u64(SEED);
        b.iter(|| {
            let mut total = 0usize;
            for &t in &targets {
                let report = algo
                    .estimate_batch(&g, Layer::Upper, t, &candidates, EPSILON, &mut rng)
                    .expect("valid batch");
                total += report.estimates.len();
            }
            criterion::black_box(total)
        });
    });

    group.bench_function("warm_multi_target", |b| {
        b.iter(|| {
            let reports = engine
                .estimate_many_targets(Layer::Upper, &targets, &candidates, EPSILON, SEED)
                .expect("valid sharded batch");
            criterion::black_box(reports.iter().map(|r| r.estimates.len()).sum::<usize>())
        });
    });

    group.finish();

    // Lean (default) vs detailed recording on the identical warm workload:
    // the cost of retaining the per-message log and per-charge ledger,
    // i.e. exactly the overhead the lean transcript removes from the hot
    // path. Both runs produce byte-identical estimates and aggregates.
    let mut group = c.benchmark_group("micro/transcript_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(N_CANDIDATES)));
    group.bench_function("warm_single_lean", |b| {
        let mut rng = StdRng::seed_from_u64(SEED);
        b.iter(|| {
            let report = algo
                .estimate_batch_in(
                    engine.env(),
                    Layer::Upper,
                    0,
                    &candidates,
                    EPSILON,
                    &mut rng,
                )
                .expect("valid batch");
            criterion::black_box(report.transcript.total_bytes())
        });
    });
    group.bench_function("warm_single_detailed", |b| {
        let mut rng = StdRng::seed_from_u64(SEED);
        b.iter(|| {
            let report = algo
                .estimate_batch_in_detailed(
                    engine.env(),
                    Layer::Upper,
                    0,
                    &candidates,
                    EPSILON,
                    &mut rng,
                )
                .expect("valid batch");
            criterion::black_box(report.transcript.messages().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine_cached_batch);
criterion_main!(benches);

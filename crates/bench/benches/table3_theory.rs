//! Regenerates Table 3 (expected L2 loss summary) with an empirical
//! validation column, and benchmarks the closed-form loss evaluations.

use bench::print_tables;
use cne::loss;
use criterion::{criterion_group, criterion_main, Criterion};
use eval::experiments::table3_theory;

fn bench_table3(c: &mut Criterion) {
    let config = table3_theory::Config::default();
    let tables = table3_theory::run(&config);
    print_tables("Table 3: expected L2 losses (theory vs empirical)", &tables);

    let mut group = c.benchmark_group("table3/closed_forms");
    group.bench_function("loss_summary_row", |b| {
        b.iter(|| {
            criterion::black_box(loss::LossSummaryRow::evaluate(
                criterion::black_box(10_000),
                20.0,
                200.0,
                2.0,
            ))
        });
    });
    group.bench_function("optimize_double_source", |b| {
        b.iter(|| {
            criterion::black_box(cne::optimizer::optimize_double_source(
                criterion::black_box(20.0),
                200.0,
                2.0,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);

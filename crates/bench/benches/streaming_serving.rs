//! The serving-tier benchmark (ISSUE 7): sustained query throughput under
//! a continuous zipf edge stream, double-buffered vs. stop-the-world.
//!
//! Both modes consume the **identical** pre-generated delta stream —
//! `BATCHES_PER_CYCLE` 64-edge batches arrive per query round, so writes
//! outpace queries the way a live ingest tier does — and run the identical
//! warm screening query per cycle (target 0 against 200 dense candidates,
//! same shape as `engine_cached_batch` / `streaming_updates`). The
//! difference is purely architectural:
//!
//! * **stop-the-world** — the single-engine serving mode: every arriving
//!   batch is spliced synchronously (`apply_updates`) the moment it lands
//!   (the engine has no update log, so ingestion must finish before
//!   control returns to serving), and each splice pays a full CSR merge
//!   pass regardless of batch size.
//! * **double-buffered** — a `ServingEngine`: producers append to the
//!   `UpdateLog`, readers query epoch-pinned snapshots, and the writer
//!   thread coalesces everything pending into one merge pass per publish.
//!
//! The host is effectively single-core, which keeps the accounting
//! honest: every cycle the writer thread steals from readers shows up in
//! the measured reader wall-times. The double-buffered *sustained* figure
//! additionally folds in the end-of-run drain (`flush` plus writer
//! teardown, which replays the spare buffer's backlog), so **all**
//! deferred ingestion work lands inside the measured window and both
//! modes end fully caught up. The *worst window* excludes that teardown —
//! it measures what a reader can observe mid-stream, and the whole point
//! is that a reader's worst cycle is bounded by query cost plus scheduler
//! noise, never by a merge pass.
//!
//! Hand-rolled harness (no criterion stub): the gated ratios need a
//! tail window — the 95th-percentile cycle, a p99-style stand-in that is
//! stable enough to gate (the absolute max is scheduler-noise jitter on
//! a loaded core) — alongside the mean, and the stub only reports means.
//! Output lines use the same `bench: <id> <t> <unit>/iter` grammar
//! `bench_check` parses.
//!
//! Gated ratios (hardware-neutral, see `BENCH_micro.json`):
//! `sustained_double_buffered / sustained_stop_the_world` and
//! `worst_window_double_buffered / worst_window_stop_the_world`.

use bigraph::{BipartiteGraph, GraphDelta, Layer};
use cne::engine::EstimationEngine;
use cne::serving::{ServingConfig, ServingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const N_ITEMS: usize = 100_000;
const N_CANDIDATES: u32 = 200;
const CANDIDATE_DEGREE: u32 = 12_000;
const EPSILON: f64 = 2.0;
const SEED: u64 = 0x00CA_C4E7;
const BATCH_EDGES: usize = 64;
/// Write pressure: batches arriving per query round. At 6, the write
/// stream outpaces the query loop — the regime where splice coalescing
/// pays (a stop-the-world server pays six fixed-cost merge passes per
/// cycle, the writer thread one per publish).
const BATCHES_PER_CYCLE: usize = 6;
/// Reader duty cycle: screening rounds answered per cycle. Several
/// rounds per cycle is the serving regime (readers query top-k
/// continuously); it also gives the writer thread wall-time to
/// interleave its coalesced merges on a loaded core instead of
/// deferring the whole stream to the end-of-run drain.
const QUERY_ROUNDS_PER_CYCLE: usize = 4;

/// Same 2.4M-edge screening graph as `streaming_updates`.
fn screening_graph() -> BipartiteGraph {
    let n_upper = (N_CANDIDATES + 1) as usize;
    let mut edges = Vec::with_capacity(n_upper * CANDIDATE_DEGREE as usize);
    for u in 0..n_upper as u32 {
        for k in 0..CANDIDATE_DEGREE {
            edges.push((
                u,
                (u.wrapping_mul(977).wrapping_add(k * 19)) % N_ITEMS as u32,
            ));
        }
    }
    BipartiteGraph::from_edges(n_upper, N_ITEMS, edges).expect("valid edges")
}

/// The continuous write stream: per cycle, `BATCHES_PER_CYCLE` batches of
/// `BATCH_EDGES` edge toggles whose item endpoints follow a zipf-like
/// skew (u³-shaped, so a few hot items absorb most traffic — the regime
/// real streams live in).
fn zipf_stream(cycles: usize) -> Vec<Vec<Vec<GraphDelta>>> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut next = move || {
        // Two 32-bit halves of one draw: upper picks the candidate,
        // lower shapes the zipf-ish item.
        let draw = rand::RngCore::next_u64(&mut rng);
        let upper = 1 + (draw >> 32) as u32 % N_CANDIDATES;
        let unit = (draw & 0xFFFF_FFFF) as f64 / f64::from(u32::MAX);
        let lower = ((unit * unit * unit) * (N_ITEMS as f64 - 1.0)) as u32;
        (upper, lower)
    };
    (0..cycles)
        .map(|_| {
            (0..BATCHES_PER_CYCLE)
                .map(|_| {
                    (0..BATCH_EDGES)
                        .map(|k| {
                            let (upper, lower) = next();
                            if k % 2 == 0 {
                                GraphDelta::AddEdge { upper, lower }
                            } else {
                                GraphDelta::RemoveEdge { upper, lower }
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Mean (including any deferred drain) + 95th-percentile cycle.
#[derive(Clone, Copy)]
struct Windows {
    mean: Duration,
    worst: Duration,
}

fn summarize(cycle_times: &[Duration], deferred: Duration) -> Windows {
    let total: Duration = cycle_times.iter().sum();
    let mut sorted = cycle_times.to_vec();
    sorted.sort_unstable();
    // 95th-percentile window: the top few cycles are scheduler-noise
    // outliers on a loaded single core; the p95 cycle still captures a
    // stop-the-world merge stall (every one of its cycles pays one),
    // while being stable enough to gate run-to-run.
    let p95 = (sorted.len() * 95).div_ceil(100).max(1) - 1;
    Windows {
        mean: (total + deferred) / cycle_times.len() as u32,
        worst: sorted[p95],
    }
}

fn print_bench(id: &str, d: Duration) {
    let ms = d.as_secs_f64() * 1e3;
    println!("bench: micro/streaming_serving/{id:<37} {ms:>10.3} ms/iter");
}

/// Stop-the-world serving: splice each arriving batch synchronously, then
/// answer the query round. Returns per-cycle times.
fn run_stop_the_world(stream: &[Vec<Vec<GraphDelta>>], candidates: &[u32]) -> Vec<Duration> {
    let mut engine = EstimationEngine::from_graph(screening_graph());
    engine.warm(Layer::Upper);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut times = Vec::with_capacity(stream.len());
    for arrivals in stream {
        let start = Instant::now();
        for batch in arrivals {
            engine
                .apply_updates(&batch.iter().copied().collect())
                .expect("valid batch");
        }
        for _ in 0..QUERY_ROUNDS_PER_CYCLE {
            let report = engine
                .estimate_batch(Layer::Upper, 0, candidates, EPSILON, &mut rng)
                .expect("valid batch");
            assert_eq!(report.estimates.len(), candidates.len());
        }
        times.push(start.elapsed());
    }
    times
}

/// Double-buffered serving: append the arrivals, query an epoch-pinned
/// snapshot; the writer splices concurrently and coalesces. Returns
/// per-cycle times, the end-of-run drain time (flush + writer teardown,
/// charged to the sustained mean), and the worst observed ingest lag.
fn run_double_buffered(
    stream: &[Vec<Vec<GraphDelta>>],
    candidates: &[u32],
) -> (Vec<Duration>, Duration, u64) {
    let serving = ServingEngine::with_config(
        screening_graph(),
        ServingConfig {
            warm_layer: Some(Layer::Upper),
            // The coalescing knob: long enough that one publish absorbs
            // several cycles' worth of arrivals, short enough that the
            // live buffer trails the stream by only a few milliseconds.
            poll_interval: Duration::from_millis(2),
            // Let every drain coalesce the whole pending backlog into a
            // single merge pass; the default cap is sized for bounded
            // latency, not a saturating benchmark stream.
            max_deltas_per_cycle: 16 * 1024,
            ..ServingConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut times = Vec::with_capacity(stream.len());
    let mut max_lag = 0u64;
    for arrivals in stream {
        let start = Instant::now();
        for batch in arrivals {
            serving.extend(batch.iter().copied());
        }
        for _ in 0..QUERY_ROUNDS_PER_CYCLE {
            // A fresh pin per round: pins are brief, so the writer's
            // wait-for-pins never stalls a full publish cycle behind a
            // long-lived reader.
            let snap = serving.snapshot();
            let report = snap
                .estimate_batch(Layer::Upper, 0, candidates, EPSILON, &mut rng)
                .expect("valid batch");
            assert_eq!(report.estimates.len(), candidates.len());
        }
        times.push(start.elapsed());
        max_lag = max_lag.max(serving.stats().ingest_lag);
    }
    // Account the deferred ingestion inside the measured window: the
    // drain-to-empty (flush) plus the writer teardown, which replays the
    // spare buffer's backlog before joining.
    let start = Instant::now();
    serving.flush();
    drop(serving);
    (times, start.elapsed(), max_lag)
}

fn main() {
    // Single-threaded queries, same rationale as the other gated groups:
    // the ratios isolate serving architecture, not rayon parallelism.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let cycles: usize = std::env::var("STREAMING_SERVING_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let candidates: Vec<u32> = (1..=N_CANDIDATES).collect();
    let stream = zipf_stream(cycles);

    // Best-of-two interleaved repetitions per mode: one slow repetition
    // (page-cache churn, a background daemon waking up) is discarded
    // instead of poisoning the gated ratio, and interleaving keeps any
    // slow phase of the host from landing entirely on one mode.
    let mut stop = Windows {
        mean: Duration::MAX,
        worst: Duration::MAX,
    };
    let mut dbuf = stop;
    let mut max_lag = 0u64;
    let mut drain = Duration::ZERO;
    for _ in 0..2 {
        let rep = summarize(&run_stop_the_world(&stream, &candidates), Duration::ZERO);
        stop.mean = stop.mean.min(rep.mean);
        stop.worst = stop.worst.min(rep.worst);
        let (times, rep_drain, rep_lag) = run_double_buffered(&stream, &candidates);
        let rep = summarize(&times, rep_drain);
        if rep.mean < dbuf.mean {
            drain = rep_drain;
        }
        dbuf.mean = dbuf.mean.min(rep.mean);
        dbuf.worst = dbuf.worst.min(rep.worst);
        max_lag = max_lag.max(rep_lag);
    }

    // One "iter" is one cycle: ingest BATCHES_PER_CYCLE 64-edge batches +
    // one 200-candidate screening round. Sustained QPS is the reciprocal
    // of the mean (deferred drain included for the double-buffered mode).
    print_bench("sustained_stop_the_world", stop.mean);
    print_bench("sustained_double_buffered", dbuf.mean);
    print_bench("worst_window_stop_the_world", stop.worst);
    print_bench("worst_window_double_buffered", dbuf.worst);

    let qps = |w: &Windows| 1.0 / w.mean.as_secs_f64();
    println!(
        "info: streaming_serving cycles={cycles} qps_stop={:.1} qps_double={:.1} \
         speedup={:.2}x worst_ratio={:.2}x max_ingest_lag={max_lag} drain_ms={:.1}",
        qps(&stop),
        qps(&dbuf),
        qps(&dbuf) / qps(&stop),
        stop.worst.as_secs_f64() / dbuf.worst.as_secs_f64(),
        drain.as_secs_f64() * 1e3,
    );
}

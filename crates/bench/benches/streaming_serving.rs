//! The serving-tier benchmark (ISSUE 7): sustained query throughput under
//! a continuous zipf edge stream, double-buffered vs. stop-the-world.
//!
//! Both modes consume the **identical** pre-generated delta stream —
//! `BATCHES_PER_CYCLE` 64-edge batches arrive per query round, so writes
//! outpace queries the way a live ingest tier does — and run the identical
//! warm screening query per cycle (target 0 against 200 dense candidates,
//! same shape as `engine_cached_batch` / `streaming_updates`). The
//! difference is purely architectural:
//!
//! * **stop-the-world** — the single-engine serving mode: every arriving
//!   batch is spliced synchronously (`apply_updates`) the moment it lands
//!   (the engine has no update log, so ingestion must finish before
//!   control returns to serving), and each splice pays a full CSR merge
//!   pass regardless of batch size.
//! * **double-buffered** — a `ServingEngine`: producers append to the
//!   `UpdateLog`, readers query epoch-pinned snapshots, and the writer
//!   thread coalesces everything pending into one merge pass per publish.
//!
//! The host is effectively single-core, which keeps the accounting
//! honest: every cycle the writer thread steals from readers shows up in
//! the measured reader wall-times. The double-buffered *sustained* figure
//! additionally folds in the end-of-run drain (`flush` plus writer
//! teardown, which replays the spare buffer's backlog), so **all**
//! deferred ingestion work lands inside the measured window and both
//! modes end fully caught up. The *worst window* excludes that teardown —
//! it measures what a reader can observe mid-stream, and the whole point
//! is that a reader's worst cycle is bounded by query cost plus scheduler
//! noise, never by a merge pass.
//!
//! **Multi-process legs (ISSUE 8).** The same cycle loop also runs
//! against real shard-worker processes behind a [`cluster::Coordinator`]
//! (the bench binary re-executes itself as each worker — see
//! [`cluster::maybe_run_worker_from_env`]), in three deployments:
//!
//! * `cluster_1worker` — one front, one worker owning the whole graph:
//!   the single-process serving tier plus the process boundary.
//! * `cluster_4worker_sharded` — one front, four shard workers: the
//!   update stream is partitioned, so each worker splices ~¼ of the
//!   deltas into a ~¼-size shard graph and total splice work stays
//!   constant as workers are added.
//! * `cluster_4worker_replicated` — the naive alternative that lacks the
//!   placement-independence theorem: four full replicas, every one
//!   ingesting the **entire** stream into a **full** graph (queries
//!   round-robin). Replication scales query capacity but multiplies
//!   splice work by the replica count; sharding is what makes ingest
//!   scale too.
//!
//! Hand-rolled harness (no criterion stub): the gated ratios need a
//! tail window — the 95th-percentile cycle, a p99-style stand-in that is
//! stable enough to gate (the absolute max is scheduler-noise jitter on
//! a loaded core) — alongside the mean, and the stub only reports means.
//! Output lines use the same `bench: <id> <t> <unit>/iter` grammar
//! `bench_check` parses.
//!
//! **Persistence legs (ISSUE 9).** Fast-restart cost, measured both
//! in-process and across the process boundary:
//!
//! * `cold_text_build` vs `snapshot_load` — rebuilding a warm engine
//!   from the text edge list (read + parse + CSR build + warm passes
//!   over both layers) against adopting a binary [`bigraph::snapshot`]
//!   (read + validate + install pre-packed bitmaps straight into the
//!   adjacency store — the same end state).
//! * `spawn_bootstrap_frames` vs `spawn_bootstrap_snapshot` — spawning
//!   a 4-shard cluster by shipping per-shard edge lists over the
//!   sockets against restricting an already-captured snapshot image
//!   into per-shard files and shipping only their paths
//!   (`BootstrapSnapshot`); each worker adopts just its own shard's
//!   bytes.
//!
//! **Rebalance leg (ISSUE 10).** A 2-shard cluster keeps answering the
//! screening query while it splits live to 4 shards and merges back,
//! stepping the rebalance state machine by hand with a query between
//! every step. `rebalance_steady_query` is the query mean outside any
//! rebalance window, `rebalance_worst_query` the worst single query
//! inside one, and `rebalance_failed_queries` the count of queries that
//! errored (reported as a raw `ns` value so `bench_check` can gate it to
//! **exactly zero** — the clean-path contract is that a live rebalance
//! is invisible to readers).
//!
//! Gated ratios (hardware-neutral, see `BENCH_micro.json`):
//! `sustained_double_buffered / sustained_stop_the_world`,
//! `worst_window_double_buffered / worst_window_stop_the_world`,
//! `sustained_cluster_4worker_sharded / sustained_cluster_4worker_replicated`
//! (the ingest-scaling edge),
//! `sustained_cluster_4worker_sharded / sustained_cluster_1worker`
//! (fan-out overhead must stay bounded),
//! `snapshot_load / cold_text_build` (the fast-restart edge),
//! `spawn_bootstrap_snapshot / spawn_bootstrap_frames` (snapshot
//! bootstrap must keep beating edge-frame bootstrap), and
//! `rebalance_worst_query / rebalance_steady_query` (a mid-rebalance
//! query must stay bounded by query cost, never pay a splice or a
//! snapshot cut).

use bigraph::snapshot::{read_snapshot, GraphSnapshot};
use bigraph::{BipartiteGraph, GraphDelta, Layer};
use cluster::{ClusterConfig, Coordinator};
use cne::engine::EstimationEngine;
use cne::serving::{ServingConfig, ServingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const N_ITEMS: usize = 100_000;
const N_CANDIDATES: u32 = 200;
const CANDIDATE_DEGREE: u32 = 12_000;
const EPSILON: f64 = 2.0;
const SEED: u64 = 0x00CA_C4E7;
const BATCH_EDGES: usize = 64;
/// Write pressure: batches arriving per query round. At 6, the write
/// stream outpaces the query loop — the regime where splice coalescing
/// pays (a stop-the-world server pays six fixed-cost merge passes per
/// cycle, the writer thread one per publish).
const BATCHES_PER_CYCLE: usize = 6;
/// Reader duty cycle: screening rounds answered per cycle. Several
/// rounds per cycle is the serving regime (readers query top-k
/// continuously); it also gives the writer thread wall-time to
/// interleave its coalesced merges on a loaded core instead of
/// deferring the whole stream to the end-of-run drain.
const QUERY_ROUNDS_PER_CYCLE: usize = 4;

/// Same 2.4M-edge screening graph as `streaming_updates`.
fn screening_graph() -> BipartiteGraph {
    let n_upper = (N_CANDIDATES + 1) as usize;
    let mut edges = Vec::with_capacity(n_upper * CANDIDATE_DEGREE as usize);
    for u in 0..n_upper as u32 {
        for k in 0..CANDIDATE_DEGREE {
            edges.push((
                u,
                (u.wrapping_mul(977).wrapping_add(k * 19)) % N_ITEMS as u32,
            ));
        }
    }
    BipartiteGraph::from_edges(n_upper, N_ITEMS, edges).expect("valid edges")
}

/// The continuous write stream: per cycle, `BATCHES_PER_CYCLE` batches of
/// `BATCH_EDGES` edge toggles whose item endpoints follow a zipf-like
/// skew (u³-shaped, so a few hot items absorb most traffic — the regime
/// real streams live in).
fn zipf_stream(cycles: usize) -> Vec<Vec<Vec<GraphDelta>>> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut next = move || {
        // Two 32-bit halves of one draw: upper picks the candidate,
        // lower shapes the zipf-ish item.
        let draw = rand::RngCore::next_u64(&mut rng);
        let upper = 1 + (draw >> 32) as u32 % N_CANDIDATES;
        let unit = (draw & 0xFFFF_FFFF) as f64 / f64::from(u32::MAX);
        let lower = ((unit * unit * unit) * (N_ITEMS as f64 - 1.0)) as u32;
        (upper, lower)
    };
    (0..cycles)
        .map(|_| {
            (0..BATCHES_PER_CYCLE)
                .map(|_| {
                    (0..BATCH_EDGES)
                        .map(|k| {
                            let (upper, lower) = next();
                            if k % 2 == 0 {
                                GraphDelta::AddEdge { upper, lower }
                            } else {
                                GraphDelta::RemoveEdge { upper, lower }
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Mean (including any deferred drain) + 95th-percentile cycle.
#[derive(Clone, Copy)]
struct Windows {
    mean: Duration,
    worst: Duration,
}

fn summarize(cycle_times: &[Duration], deferred: Duration) -> Windows {
    let total: Duration = cycle_times.iter().sum();
    let mut sorted = cycle_times.to_vec();
    sorted.sort_unstable();
    // 95th-percentile window: the top few cycles are scheduler-noise
    // outliers on a loaded single core; the p95 cycle still captures a
    // stop-the-world merge stall (every one of its cycles pays one),
    // while being stable enough to gate run-to-run.
    let p95 = (sorted.len() * 95).div_ceil(100).max(1) - 1;
    Windows {
        mean: (total + deferred) / cycle_times.len() as u32,
        worst: sorted[p95],
    }
}

fn print_bench(id: &str, d: Duration) {
    let ms = d.as_secs_f64() * 1e3;
    println!("bench: micro/streaming_serving/{id:<37} {ms:>10.3} ms/iter");
}

/// Stop-the-world serving: splice each arriving batch synchronously, then
/// answer the query round. Returns per-cycle times.
fn run_stop_the_world(stream: &[Vec<Vec<GraphDelta>>], candidates: &[u32]) -> Vec<Duration> {
    let mut engine = EstimationEngine::from_graph(screening_graph());
    engine.warm(Layer::Upper);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut times = Vec::with_capacity(stream.len());
    for arrivals in stream {
        let start = Instant::now();
        for batch in arrivals {
            engine
                .apply_updates(&batch.iter().copied().collect())
                .expect("valid batch");
        }
        for _ in 0..QUERY_ROUNDS_PER_CYCLE {
            let report = engine
                .estimate_batch(Layer::Upper, 0, candidates, EPSILON, &mut rng)
                .expect("valid batch");
            assert_eq!(report.estimates.len(), candidates.len());
        }
        times.push(start.elapsed());
    }
    times
}

/// Double-buffered serving: append the arrivals, query an epoch-pinned
/// snapshot; the writer splices concurrently and coalesces. Returns
/// per-cycle times, the end-of-run drain time (flush + writer teardown,
/// charged to the sustained mean), and the worst observed ingest lag.
fn run_double_buffered(
    stream: &[Vec<Vec<GraphDelta>>],
    candidates: &[u32],
) -> (Vec<Duration>, Duration, u64) {
    let serving = ServingEngine::with_config(
        screening_graph(),
        ServingConfig {
            warm_layer: Some(Layer::Upper),
            // The coalescing knob: long enough that one publish absorbs
            // several cycles' worth of arrivals, short enough that the
            // live buffer trails the stream by only a few milliseconds.
            poll_interval: Duration::from_millis(2),
            // Let every drain coalesce the whole pending backlog into a
            // single merge pass; the default cap is sized for bounded
            // latency, not a saturating benchmark stream.
            max_deltas_per_cycle: 16 * 1024,
            ..ServingConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut times = Vec::with_capacity(stream.len());
    let mut max_lag = 0u64;
    for arrivals in stream {
        let start = Instant::now();
        for batch in arrivals {
            serving.extend(batch.iter().copied());
        }
        for _ in 0..QUERY_ROUNDS_PER_CYCLE {
            // A fresh pin per round: pins are brief, so the writer's
            // wait-for-pins never stalls a full publish cycle behind a
            // long-lived reader.
            let snap = serving.snapshot();
            let report = snap
                .estimate_batch(Layer::Upper, 0, candidates, EPSILON, &mut rng)
                .expect("valid batch");
            assert_eq!(report.estimates.len(), candidates.len());
        }
        times.push(start.elapsed());
        max_lag = max_lag.max(serving.stats().ingest_lag);
    }
    // Account the deferred ingestion inside the measured window: the
    // drain-to-empty (flush) plus the writer teardown, which replays the
    // spare buffer's backlog before joining.
    let start = Instant::now();
    serving.flush();
    drop(serving);
    (times, start.elapsed(), max_lag)
}

/// Spawns a cluster deployment: `n_fronts` coordinators, each fronting
/// `shards_per_front` shard workers over the Upper layer of `graph`. The
/// workers are this very binary re-executed (`current_exe`), so `cargo
/// bench` needs no other crate's binaries built. Returns the fronts plus
/// the socket directory to remove after teardown.
fn spawn_fronts(
    graph: &BipartiteGraph,
    shards_per_front: usize,
    n_fronts: usize,
    tag: &str,
) -> (Vec<Coordinator>, PathBuf) {
    let exe = std::env::current_exe().expect("bench exe");
    let dir = std::env::temp_dir().join(format!("cne-serving-bench-{}-{tag}", std::process::id()));
    let fronts = (0..n_fronts)
        .map(|i| {
            let front_dir = dir.join(format!("front-{i}"));
            std::fs::create_dir_all(&front_dir).expect("socket dir");
            Coordinator::spawn_program(
                graph,
                Layer::Upper,
                shards_per_front,
                &front_dir,
                ClusterConfig::default(),
                &exe,
            )
            .expect("spawn shard workers")
        })
        .collect();
    (fronts, dir)
}

/// The cluster cycle loop: ship each cycle's arrivals to every front's
/// replication log, answer the query rounds round-robin over the fronts
/// (with one front that is plain fan-out; with four replicas it is the
/// replica load-balancing that motivates replication in the first
/// place), then `flush` — a bounded-staleness contract: every cycle's
/// deltas are published cluster-wide before the cycle ends.
///
/// The flush is what makes the gated ratios stable *and* honest. Without
/// it the workers' writer threads coalesce at the scheduler's whim, so a
/// replica could defer the whole run into one giant merge pass and hide
/// the 4× splice-work multiplier replication actually costs; with it,
/// every worker pays one merge pass per cycle — the sharded deployment
/// four ~¼-graph passes (≈ one full pass of total work, split so a
/// multi-core host overlaps them), the replicated one four *full*
/// passes. Queries still read epoch-pinned snapshots and never wait on a
/// splice mid-cycle. Returns per-cycle times.
fn run_cluster(
    stream: &[Vec<Vec<GraphDelta>>],
    candidates: &[u32],
    shards_per_front: usize,
    n_fronts: usize,
    tag: &str,
) -> Vec<Duration> {
    let graph = screening_graph();
    let (mut fronts, dir) = spawn_fronts(&graph, shards_per_front, n_fronts, tag);
    let mut seed = SEED;
    let mut round_robin = 0usize;
    let mut times = Vec::with_capacity(stream.len());
    for arrivals in stream {
        let start = Instant::now();
        for batch in arrivals {
            // A replicated deployment pays this fan-in once per replica —
            // that duplication is the cost under test, not an artifact.
            for front in &fronts {
                front.extend(batch.iter().copied());
            }
        }
        for _ in 0..QUERY_ROUNDS_PER_CYCLE {
            seed += 1;
            let front = &mut fronts[round_robin % n_fronts];
            round_robin += 1;
            let report = front
                .estimate_batch(Layer::Upper, 0, candidates, EPSILON, seed)
                .expect("cluster batch");
            assert_eq!(report.estimates.len(), candidates.len());
        }
        for front in &mut fronts {
            front.flush().expect("bounded-staleness flush");
        }
        times.push(start.elapsed());
    }
    drop(fronts);
    let _ = std::fs::remove_dir_all(&dir);
    times
}

/// Parses the `n_upper n_lower` + `u v` fixture grammar (the same one
/// `snapshot-tool write` consumes) — the text half of the restart race.
fn parse_edge_file(text: &str) -> BipartiteGraph {
    let mut lines = text.lines().filter(|l| !l.is_empty());
    let mut header = lines.next().expect("header line").split_whitespace();
    let n_upper: usize = header.next().unwrap().parse().unwrap();
    let n_lower: usize = header.next().unwrap().parse().unwrap();
    let edges: Vec<(u32, u32)> = lines
        .map(|l| {
            let mut it = l.split_whitespace();
            let u: u32 = it.next().unwrap().parse().unwrap();
            let v: u32 = it.next().unwrap().parse().unwrap();
            (u, v)
        })
        .collect();
    BipartiteGraph::from_edges(n_upper, n_lower, edges).expect("valid edge file")
}

/// The persistence legs: in-process restart (text rebuild vs snapshot
/// adoption) and cluster spawn (edge frames vs snapshot bootstrap), each
/// best-of-`reps`. Returns `[cold_text_build, snapshot_load,
/// spawn_bootstrap_frames, spawn_bootstrap_snapshot]`.
fn run_bootstrap_legs(graph: &BipartiteGraph, reps: usize) -> [Duration; 4] {
    let dir = std::env::temp_dir().join(format!("cne-serving-bench-{}-boot", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bootstrap scratch dir");
    // Untimed setup: materialize both restart sources once.
    let edges_path = dir.join("screening.edges");
    let mut text = format!("{} {}\n", graph.n_upper(), graph.n_lower());
    for (u, l) in graph.edges() {
        use std::fmt::Write;
        writeln!(text, "{u} {l}").unwrap();
    }
    std::fs::write(&edges_path, &text).expect("write edge file");
    let snap_path = dir.join("screening.snap");
    let snap_img = GraphSnapshot::capture(graph, 0);
    snap_img.write_to(&snap_path).expect("write snapshot");

    let exe = std::env::current_exe().expect("bench exe");
    let mut best = [Duration::MAX; 4];
    for rep in 0..reps {
        // Cold restart from text: read + parse + CSR build + warm passes.
        // Both layers are warmed because that is the state a snapshot
        // restores — adoption pre-populates every dense vertex of both
        // layers, so the cold competitor must reach the same warm state.
        let start = Instant::now();
        let parsed = parse_edge_file(&std::fs::read_to_string(&edges_path).expect("read edges"));
        let engine = EstimationEngine::from_graph(parsed);
        engine.warm(Layer::Upper);
        engine.warm(Layer::Lower);
        best[0] = best[0].min(start.elapsed());
        assert_eq!(engine.graph().n_edges(), graph.n_edges());
        drop(engine);

        // Snapshot restart: read + validate + adopt pre-packed bitmaps.
        let start = Instant::now();
        let snap = read_snapshot(&snap_path).expect("read snapshot");
        let engine = EstimationEngine::from_snapshot(&snap);
        best[1] = best[1].min(start.elapsed());
        assert_eq!(engine.graph().n_edges(), graph.n_edges());
        drop((engine, snap));

        // 4-shard cluster spawn, edge lists crossing the sockets.
        let frames_dir = dir.join(format!("frames-{rep}"));
        std::fs::create_dir_all(&frames_dir).expect("socket dir");
        let start = Instant::now();
        let cluster = Coordinator::spawn_program(
            graph,
            Layer::Upper,
            4,
            &frames_dir,
            ClusterConfig::default(),
            &exe,
        )
        .expect("frame-bootstrap spawn");
        best[2] = best[2].min(start.elapsed());
        drop(cluster);

        // 4-shard cluster spawn from the already-captured snapshot image
        // (the serving tier's quiet-point artifact). The shard directory
        // is persistent across reps: the first rep pays the one-time
        // shard-file derivation, later reps measure the restart an
        // operator actually repeats — the manifest revalidates the
        // existing artifacts, so path frames and worker-side adoption
        // are what's on the clock. Best-of-reps therefore reports the
        // warm-restart figure the gate is about.
        let snap_dir = dir.join("snap-spawn");
        std::fs::create_dir_all(&snap_dir).expect("socket dir");
        let start = Instant::now();
        let cluster = Coordinator::spawn_program_from_snapshot(
            &snap_img,
            Layer::Upper,
            4,
            &snap_dir,
            ClusterConfig::default(),
            &exe,
        )
        .expect("snapshot-bootstrap spawn");
        best[3] = best[3].min(start.elapsed());
        drop(cluster);
    }
    let _ = std::fs::remove_dir_all(&dir);
    best
}

/// One timed screening query against the cluster front; an `Err` counts
/// as a failed query (the gated count — zero on the clean path).
fn timed_query(
    front: &mut Coordinator,
    candidates: &[u32],
    seed: u64,
    failed: &mut usize,
) -> Duration {
    let start = Instant::now();
    match front.estimate_batch(Layer::Upper, 0, candidates, EPSILON, seed) {
        Ok(report) => assert_eq!(report.estimates.len(), candidates.len()),
        Err(_) => *failed += 1,
    }
    start.elapsed()
}

/// The live-rebalance leg (ISSUE 10): split 2→4, merge 4→2, querying
/// between every state-machine step while update pressure keeps arriving.
/// Best-of-`reps` on the timing figures (the worst-query sample is a
/// single observation per rep, so one scheduler hiccup would otherwise
/// poison the gated ratio); the failed-query count accumulates across
/// every rep — a failure anywhere is a contract breach, not noise.
/// Returns `(steady query mean, worst mid-rebalance query, failed query
/// count)`.
fn run_rebalance_leg(candidates: &[u32], reps: usize) -> (Duration, Duration, usize) {
    let graph = screening_graph();
    let snap = GraphSnapshot::capture(&graph, 0);
    drop(graph);
    let exe = std::env::current_exe().expect("bench exe");
    let mut best_steady = Duration::MAX;
    let mut best_worst = Duration::MAX;
    let mut failed = 0usize;
    for rep in 0..reps {
        let (steady, worst) = rebalance_rep(&snap, candidates, rep, &exe, &mut failed);
        best_steady = best_steady.min(steady);
        best_worst = best_worst.min(worst);
    }
    (best_steady, best_worst, failed)
}

/// One repetition of the rebalance leg: fresh cluster, fresh socket dir.
fn rebalance_rep(
    snap: &GraphSnapshot,
    candidates: &[u32],
    rep: usize,
    exe: &std::path::Path,
    failed: &mut usize,
) -> (Duration, Duration) {
    let dir = std::env::temp_dir().join(format!(
        "cne-serving-bench-{}-rebal-{rep}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let mut front = Coordinator::spawn_program_from_snapshot(
        snap,
        Layer::Upper,
        2,
        &dir,
        ClusterConfig::default(),
        exe,
    )
    .expect("rebalance-leg spawn");

    // Continuous write pressure: one 64-edge batch lands before every
    // query, so the cutover's tail replay and the steady pumps both have
    // real work.
    let pressure: Vec<Vec<GraphDelta>> = zipf_stream(8).into_iter().flatten().collect();
    let mut next_batch = 0usize;
    let mut push = |front: &Coordinator| {
        front.extend(pressure[next_batch % pressure.len()].iter().copied());
        next_batch += 1;
    };

    let mut steady = Vec::new();
    let mut worst = Duration::ZERO;
    let mut seed = SEED + ((rep as u64) << 16);

    // Steady-state window on the 2-shard topology.
    for _ in 0..6 {
        push(&front);
        front.flush().expect("steady flush");
        seed += 1;
        steady.push(timed_query(&mut front, candidates, seed, failed));
    }
    // Live split 2→4 and merge 4→2 (shifted cut), a query between every
    // step of both. Updates keep arriving un-flushed: the cutover replay
    // and the post-commit pumps absorb them.
    let n_upper = (N_CANDIDATES + 1) / 4;
    let plans: [Vec<std::ops::Range<u32>>; 2] = [
        (0..4)
            .map(|i| {
                let lo = i * n_upper;
                let hi = if i == 3 { u32::MAX } else { (i + 1) * n_upper };
                lo..hi
            })
            .collect(),
        vec![
            0..N_CANDIDATES.div_ceil(2) + 1,
            N_CANDIDATES.div_ceil(2) + 1..u32::MAX,
        ],
    ];
    for plan in plans {
        front.begin_rebalance(plan).expect("begin rebalance");
        while front.rebalance_in_flight().is_some() {
            push(&front);
            seed += 1;
            worst = worst.max(timed_query(&mut front, candidates, seed, failed));
            front.rebalance_step().expect("clean-path rebalance step");
        }
    }
    // Steady-state window again on the merged topology.
    for _ in 0..6 {
        push(&front);
        front.flush().expect("steady flush");
        seed += 1;
        steady.push(timed_query(&mut front, candidates, seed, failed));
    }
    drop(front);
    let _ = std::fs::remove_dir_all(&dir);
    let mean = steady.iter().sum::<Duration>() / steady.len() as u32;
    (mean, worst)
}

fn main() {
    // The bench binary doubles as the shard-worker executable: when the
    // worker env vars are set, this process IS a worker — serve and exit.
    if cluster::maybe_run_worker_from_env() {
        return;
    }
    // Single-threaded queries, same rationale as the other gated groups:
    // the ratios isolate serving architecture, not rayon parallelism.
    // (Worker processes spawn later and inherit this.)
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let cycles: usize = std::env::var("STREAMING_SERVING_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let candidates: Vec<u32> = (1..=N_CANDIDATES).collect();
    let stream = zipf_stream(cycles);

    // Best-of-two interleaved repetitions per mode: one slow repetition
    // (page-cache churn, a background daemon waking up) is discarded
    // instead of poisoning the gated ratio, and interleaving keeps any
    // slow phase of the host from landing entirely on one mode.
    let mut stop = Windows {
        mean: Duration::MAX,
        worst: Duration::MAX,
    };
    let mut dbuf = stop;
    let mut max_lag = 0u64;
    let mut drain = Duration::ZERO;
    for _ in 0..2 {
        let rep = summarize(&run_stop_the_world(&stream, &candidates), Duration::ZERO);
        stop.mean = stop.mean.min(rep.mean);
        stop.worst = stop.worst.min(rep.worst);
        let (times, rep_drain, rep_lag) = run_double_buffered(&stream, &candidates);
        let rep = summarize(&times, rep_drain);
        if rep.mean < dbuf.mean {
            drain = rep_drain;
        }
        dbuf.mean = dbuf.mean.min(rep.mean);
        dbuf.worst = dbuf.worst.min(rep.worst);
        max_lag = max_lag.max(rep_lag);
    }

    // The multi-process legs: a shorter stream (spawn + bootstrap of real
    // worker processes is the fixed cost here, not the per-cycle loop),
    // same arrivals-per-cycle pressure, same screening query.
    let cluster_cycles: usize = std::env::var("CLUSTER_SERVING_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cycles.min(40));
    let cluster_stream = zipf_stream(cluster_cycles);
    // (shards per front, fronts, bench id)
    let deployments: [(usize, usize, &str); 3] = [
        (1, 1, "cluster_1worker"),
        (4, 1, "cluster_4worker_sharded"),
        (1, 4, "cluster_4worker_replicated"),
    ];
    let mut cluster = [Windows {
        mean: Duration::MAX,
        worst: Duration::MAX,
    }; 3];
    for rep in 0..2 {
        for (leg, &(shards, fronts, id)) in deployments.iter().enumerate() {
            let tag = format!("{id}-{rep}");
            let times = run_cluster(&cluster_stream, &candidates, shards, fronts, &tag);
            let w = summarize(&times, Duration::ZERO);
            cluster[leg].mean = cluster[leg].mean.min(w.mean);
            cluster[leg].worst = cluster[leg].worst.min(w.worst);
        }
    }

    // The persistence legs: one "iter" is one full restart (engine
    // rebuild or 4-shard cluster spawn), best of two.
    let graph = screening_graph();
    let [cold_text, snap_load, spawn_frames, spawn_snap] = run_bootstrap_legs(&graph, 3);
    drop(graph);

    // The live-rebalance leg: one "iter" is one screening query; the
    // failed-query count rides the same line grammar as a raw ns value
    // so `bench_check` can gate it to exactly zero.
    let (rebal_steady, rebal_worst, rebal_failed) = run_rebalance_leg(&candidates, 2);

    // One "iter" is one cycle: ingest BATCHES_PER_CYCLE 64-edge batches +
    // one 200-candidate screening round. Sustained QPS is the reciprocal
    // of the mean (deferred drain included for the double-buffered mode).
    print_bench("sustained_stop_the_world", stop.mean);
    print_bench("sustained_double_buffered", dbuf.mean);
    print_bench("worst_window_stop_the_world", stop.worst);
    print_bench("worst_window_double_buffered", dbuf.worst);
    for (leg, &(_, _, id)) in deployments.iter().enumerate() {
        print_bench(&format!("sustained_{id}"), cluster[leg].mean);
    }
    print_bench("cold_text_build", cold_text);
    print_bench("snapshot_load", snap_load);
    print_bench("spawn_bootstrap_frames", spawn_frames);
    print_bench("spawn_bootstrap_snapshot", spawn_snap);
    print_bench("rebalance_steady_query", rebal_steady);
    print_bench("rebalance_worst_query", rebal_worst);
    println!(
        "bench: micro/streaming_serving/{:<37} {rebal_failed:>10} ns/iter",
        "rebalance_failed_queries"
    );

    let qps = |w: &Windows| 1.0 / w.mean.as_secs_f64();
    println!(
        "info: streaming_serving cycles={cycles} qps_stop={:.1} qps_double={:.1} \
         speedup={:.2}x worst_ratio={:.2}x max_ingest_lag={max_lag} drain_ms={:.1}",
        qps(&stop),
        qps(&dbuf),
        qps(&dbuf) / qps(&stop),
        stop.worst.as_secs_f64() / dbuf.worst.as_secs_f64(),
        drain.as_secs_f64() * 1e3,
    );
    println!(
        "info: streaming_serving cluster cycles={cluster_cycles} qps_1w={:.1} \
         qps_4w_sharded={:.1} qps_4w_replicated={:.1} shard_vs_replicated={:.2}x \
         fanout_overhead_4w_vs_1w={:.2}x",
        qps(&cluster[0]),
        qps(&cluster[1]),
        qps(&cluster[2]),
        qps(&cluster[1]) / qps(&cluster[2]),
        cluster[1].mean.as_secs_f64() / cluster[0].mean.as_secs_f64(),
    );
    println!(
        "info: streaming_serving rebalance steady_query_ms={:.2} worst_query_ms={:.2} \
         mid_rebalance_tax={:.2}x failed_queries={rebal_failed}",
        rebal_steady.as_secs_f64() * 1e3,
        rebal_worst.as_secs_f64() * 1e3,
        rebal_worst.as_secs_f64() / rebal_steady.as_secs_f64(),
    );
    println!(
        "info: streaming_serving bootstrap cold_text_ms={:.1} snapshot_load_ms={:.1} \
         restart_speedup={:.2}x spawn_frames_ms={:.1} spawn_snapshot_ms={:.1} \
         spawn_speedup={:.2}x",
        cold_text.as_secs_f64() * 1e3,
        snap_load.as_secs_f64() * 1e3,
        cold_text.as_secs_f64() / snap_load.as_secs_f64(),
        spawn_frames.as_secs_f64() * 1e3,
        spawn_snap.as_secs_f64() * 1e3,
        spawn_frames.as_secs_f64() / spawn_snap.as_secs_f64(),
    );
}

//! Regenerates Figure 8 (privacy-budget allocation optimisation) and
//! benchmarks MultiR-DS-Basic across ε₁ splits against the optimised MultiR-DS.

use bench::{bench_context, print_tables};
use bigraph::Layer;
use cne::{CommonNeighborEstimator, MultiRDS, MultiRDSBasic, Query};
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::DatasetCode;
use eval::experiments::fig08_budget;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_fig08(c: &mut Criterion) {
    let config = fig08_budget::Config {
        context: bench_context(),
        ..Default::default()
    };
    let tables = fig08_budget::run(&config);
    print_tables("Figure 8: budget allocation optimisation", &tables);

    let dataset = config
        .context
        .catalog
        .generate(DatasetCode::BX, 1)
        .expect("BX profile exists");
    let graph = dataset.graph;
    let query = Query::new(Layer::Upper, 0, 1);
    let mut group = c.benchmark_group("fig08/single_estimate_bx");
    group.sample_size(20);
    for fraction in [0.1, 0.5, 0.7] {
        group.bench_function(format!("ds_basic_eps1_{fraction}"), |b| {
            let algo = MultiRDSBasic::with_fraction(fraction).expect("valid fraction");
            let mut rng = ChaCha12Rng::seed_from_u64(8);
            b.iter(|| {
                criterion::black_box(
                    algo.estimate(&graph, &query, 2.0, &mut rng)
                        .expect("estimation succeeds")
                        .estimate,
                )
            });
        });
    }
    group.bench_function("ds_optimised", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        b.iter(|| {
            criterion::black_box(
                MultiRDS::default()
                    .estimate(&graph, &query, 2.0, &mut rng)
                    .expect("estimation succeeds")
                    .estimate,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig08);
criterion_main!(benches);

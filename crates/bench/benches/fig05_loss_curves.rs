//! Regenerates Figure 5 (analytic L2 loss of f* vs ε₁) and benchmarks the
//! loss-model evaluation and the (ε₁, α) optimiser it feeds.

use bench::print_tables;
use cne::loss::double_source_l2;
use cne::optimizer::{optimal_alpha, optimize_double_source};
use criterion::{criterion_group, criterion_main, Criterion};
use eval::experiments::fig05_loss_curves;

fn bench_fig05(c: &mut Criterion) {
    let tables = fig05_loss_curves::run(&fig05_loss_curves::Config::default());
    print_tables("Figure 5: L2 loss of the double-source estimator", &tables);

    let mut group = c.benchmark_group("fig05/loss_model");
    group.bench_function("double_source_l2", |b| {
        b.iter(|| criterion::black_box(double_source_l2(5.0, 100.0, 0.7, 1.2, 0.8)));
    });
    group.bench_function("optimal_alpha", |b| {
        b.iter(|| criterion::black_box(optimal_alpha(5.0, 100.0, 1.2, 0.8)));
    });
    group.bench_function("optimize_small_degrees", |b| {
        b.iter(|| criterion::black_box(optimize_double_source(5.0, 10.0, 2.0)));
    });
    group.bench_function("optimize_imbalanced_degrees", |b| {
        b.iter(|| criterion::black_box(optimize_double_source(5.0, 1000.0, 2.0)));
    });
    group.finish();
}

criterion_group!(benches, bench_fig05);
criterion_main!(benches);

//! Micro-benchmarks of the substrate primitives: randomized response,
//! Laplace sampling, exact common-neighbor counting, and graph construction.

use bigraph::{common_neighbors, BipartiteGraph, Layer, PackedSet};
use cne::BatchSingleSource;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::generator;
use ldp::budget::PrivacyBudget;
use ldp::laplace::sample_laplace;
use ldp::randomized_response::RandomizedResponse;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_randomized_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/randomized_response");
    let rr = RandomizedResponse::new(PrivacyBudget::new(2.0).expect("valid"));
    for n in [1_000usize, 10_000, 100_000] {
        let truth: Vec<u32> = (0..(n as u32 / 100)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("perturb_list", n), &n, |b, &n| {
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            b.iter(|| criterion::black_box(rr.perturb_neighbor_list(&truth, n, &mut rng).len()));
        });
    }
    group.finish();
}

/// The tentpole workload: sparse rows (n = 100k, d = 10) where the geometric
/// skip sampler does `O(d + p·n)` work while the dense reference pays for
/// every one of the `n` slots. At ε = 4 the skip path must be ≥10× faster,
/// and the packed-native path (noisy bits written straight into `u64`
/// words — no id list, no merge) must be ≥2× the PR-3 list-producing
/// baseline at both budgets (acceptance bars recorded in BENCH_micro.json).
fn bench_perturb_sparse_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/perturb_sparse_large");
    let n = 100_000usize;
    let truth: Vec<u32> = (0..10u32).map(|i| i * 9_999).collect(); // d = 10
    for eps in [1.0f64, 4.0] {
        let rr = RandomizedResponse::new(PrivacyBudget::new(eps).expect("valid"));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("skip", eps), &n, |b, &n| {
            let mut rng = ChaCha12Rng::seed_from_u64(5);
            b.iter(|| criterion::black_box(rr.perturb_neighbor_list(&truth, n, &mut rng).len()));
        });
        group.bench_with_input(BenchmarkId::new("packed", eps), &n, |b, &n| {
            let mut rng = ChaCha12Rng::seed_from_u64(5);
            let mut scratch = ldp::PerturbScratch::new();
            b.iter(|| {
                criterion::black_box(
                    rr.perturb_neighbor_list_packed(&truth, None, n, &mut rng, &mut scratch)
                        .len(),
                )
            });
        });
        // The engine steady state: the true adjacency is already bit-packed
        // in the adjacency store, so kept bits OR in word-wise.
        let true_packed = PackedSet::from_sorted(&truth, n);
        group.bench_with_input(BenchmarkId::new("packed_cached", eps), &n, |b, &n| {
            let mut rng = ChaCha12Rng::seed_from_u64(5);
            let mut scratch = ldp::PerturbScratch::new();
            b.iter(|| {
                criterion::black_box(
                    rr.perturb_neighbor_list_packed(
                        &truth,
                        Some(&true_packed),
                        n,
                        &mut rng,
                        &mut scratch,
                    )
                    .len(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", eps), &n, |b, &n| {
            let mut rng = ChaCha12Rng::seed_from_u64(5);
            b.iter(|| {
                criterion::black_box(rr.perturb_neighbor_list_dense(&truth, n, &mut rng).len())
            });
        });
    }
    group.finish();
}

/// Noisy-list intersection at RR densities: sorted merge vs bit-packed
/// popcount (reusing pre-packed operands, the curator-side steady state).
fn bench_packed_vs_merge_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/noisy_intersection");
    let n = 100_000usize;
    let rr = RandomizedResponse::new(PrivacyBudget::new(1.0).expect("valid"));
    let truth_a: Vec<u32> = (0..20u32).map(|i| i * 4_999).collect();
    let truth_b: Vec<u32> = (0..20u32).map(|i| i * 4_999 + 7).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(6);
    // Two ε = 1 noisy lists: ~27k entries each over a 100k universe.
    let a = rr.perturb_neighbor_list(&truth_a, n, &mut rng);
    let b = rr.perturb_neighbor_list(&truth_b, n, &mut rng);
    group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
    group.bench_function("sorted_merge", |bench| {
        bench.iter(|| criterion::black_box(common_neighbors::intersection_size(&a, &b)));
    });
    let pa = PackedSet::from_sorted(&a, n);
    let pb = PackedSet::from_sorted(&b, n);
    // The unrolled 4×u64 kernel behind `intersection_size` ...
    group.bench_function("packed_popcount", |bench| {
        bench.iter(|| criterion::black_box(pa.intersection_size(&pb)));
    });
    // ... against the retained straight-line scalar reference loop.
    group.bench_function("packed_popcount_scalar", |bench| {
        bench.iter(|| {
            criterion::black_box(bigraph::bitset::popcount_and_scalar(
                pa.as_words(),
                pb.as_words(),
            ))
        });
    });
    group.bench_function("pack_then_popcount", |bench| {
        bench.iter(|| {
            let pa = PackedSet::from_sorted(&a, n);
            criterion::black_box(pa.intersection_size(&pb))
        });
    });
    // The allocation-free variant: pack into a reused scratch word buffer.
    group.bench_function("pack_then_popcount_scratch", |bench| {
        let mut scratch = bigraph::bitset::PackScratch::new();
        bench.iter(|| {
            criterion::black_box(bigraph::bitset::intersection_size_degree_aware_into(
                &a,
                &pb,
                &mut scratch,
            ))
        });
    });
    group.finish();
}

/// The parallel batch engine end to end: one target, many candidates, all
/// cores. Deterministic per-user streams keep the output byte-identical to a
/// single-threaded run.
fn bench_batch_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/batch_engine");
    group.sample_size(10);
    let mut rng = ChaCha12Rng::seed_from_u64(8);
    let g = generator::chung_lu_power_law(4_000, 30_000, 120_000, 2.1, &mut rng);
    let candidates: Vec<u32> = (1..2_001u32).collect();
    let algo = BatchSingleSource::default();
    group.throughput(Throughput::Elements(candidates.len() as u64));
    group.bench_function("estimate_batch_2000_candidates", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        b.iter(|| {
            let report = algo
                .estimate_batch(&g, Layer::Upper, 0, &candidates, 2.0, &mut rng)
                .expect("valid batch");
            criterion::black_box(report.estimates.len())
        });
    });
    group.finish();
}

fn bench_laplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/laplace");
    group.throughput(Throughput::Elements(1));
    group.bench_function("sample", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        b.iter(|| criterion::black_box(sample_laplace(1.5, &mut rng)));
    });
    group.finish();
}

/// The runtime-dispatched popcount tiers against the retained scalar
/// reference, at the engine's row width (100k-bit rows = 1563 words), plus
/// the tiled multi-row kernel against four separate dispatched passes.
/// The dispatched/scalar ratio is gated hardware-neutrally in bench_check:
/// whatever tier the CPU selects must never lose to the scalar loop.
fn bench_popcount_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/popcount_kernels");
    let words = 100_000usize.div_ceil(64);
    let mix = |salt: u64, i: u64| {
        let mut z = salt
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let a: Vec<u64> = (0..words as u64).map(|i| mix(11, i)).collect();
    let rows: Vec<Vec<u64>> = (0..4u64)
        .map(|r| (0..words as u64).map(|i| mix(100 + r, i)).collect())
        .collect();
    group.throughput(Throughput::Elements(words as u64));
    group.bench_function("dispatched", |b| {
        b.iter(|| criterion::black_box(bigraph::bitset::popcount_and(&a, &rows[0])));
    });
    group.bench_function("scalar", |b| {
        b.iter(|| criterion::black_box(bigraph::bitset::popcount_and_scalar(&a, &rows[0])));
    });
    let row_refs: Vec<&[u64]> = rows.iter().map(Vec::as_slice).collect();
    group.throughput(Throughput::Elements(4 * words as u64));
    group.bench_function("multi_4rows", |b| {
        let mut out = [0u64; 4];
        b.iter(|| {
            bigraph::bitset::popcount_and_multi(&a, &row_refs, &mut out);
            criterion::black_box(out[3])
        });
    });
    group.bench_function("per_row_4rows", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for row in &row_refs {
                acc = acc.wrapping_add(bigraph::bitset::popcount_and(&a, row));
            }
            criterion::black_box(acc)
        });
    });
    group.finish();
}

/// Batched per-user stream setup (`StdRng::seed_batch_from_u64`, the
/// interleaved-SplitMix64 path under the fused round 2) against one
/// `seed_from_u64` per user — state-identical, gated in bench_check.
fn bench_rng_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/rng_setup");
    let n = 256usize;
    let seeds: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("batched_256", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            rand::rngs::StdRng::seed_batch_from_u64(&seeds, &mut out);
            criterion::black_box(out.len())
        });
    });
    group.bench_function("scalar_256", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            out.extend(seeds.iter().map(|&s| rand::rngs::StdRng::seed_from_u64(s)));
            criterion::black_box(out.len())
        });
    });
    group.finish();
}

/// Block Laplace sampling (`sample_laplace_block`, bulk uniform refill via
/// `fill_bytes`) against one `sample_laplace` per draw — draw-for-draw
/// identical streams, gated in bench_check.
fn bench_laplace_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/laplace_block");
    let n = 256usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("block_256", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut out = vec![0.0f64; n];
        b.iter(|| {
            ldp::laplace::sample_laplace_block(1.5, &mut rng, &mut out);
            criterion::black_box(out[n - 1])
        });
    });
    group.bench_function("scalar_256", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut out = vec![0.0f64; n];
        b.iter(|| {
            for slot in out.iter_mut() {
                *slot = sample_laplace(1.5, &mut rng);
            }
            criterion::black_box(out[n - 1])
        });
    });
    group.finish();
}

fn bench_exact_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/exact_c2");
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let g = generator::chung_lu_power_law(5_000, 20_000, 100_000, 2.1, &mut rng);
    group.bench_function("count_highest_degree_pair", |b| {
        // Exercise the merge/galloping intersection on the heaviest vertices.
        let mut by_degree: Vec<u32> = (0..g.n_upper() as u32).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(Layer::Upper, v)));
        let (u, w) = (by_degree[0], by_degree[1]);
        b.iter(|| criterion::black_box(common_neighbors::count(&g, Layer::Upper, u, w).unwrap()));
    });
    group.bench_function("jaccard_random_pair", |b| {
        b.iter(|| {
            criterion::black_box(common_neighbors::jaccard(&g, Layer::Upper, 10, 20).unwrap())
        });
    });
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/graph_build");
    group.sample_size(10);
    let mut rng = ChaCha12Rng::seed_from_u64(4);
    let g = generator::uniform_gnm(10_000, 10_000, 200_000, &mut rng);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("csr_build_200k_edges", |b| {
        b.iter(|| {
            criterion::black_box(
                BipartiteGraph::from_edges(10_000, 10_000, edges.iter().copied())
                    .expect("valid edges")
                    .n_edges(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_randomized_response,
    bench_perturb_sparse_large,
    bench_packed_vs_merge_intersection,
    bench_batch_engine,
    bench_laplace,
    bench_popcount_kernels,
    bench_rng_setup,
    bench_laplace_block,
    bench_exact_counting,
    bench_graph_build
);
criterion_main!(benches);

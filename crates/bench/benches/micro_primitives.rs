//! Micro-benchmarks of the substrate primitives: randomized response,
//! Laplace sampling, exact common-neighbor counting, and graph construction.

use bigraph::{common_neighbors, BipartiteGraph, Layer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::generator;
use ldp::budget::PrivacyBudget;
use ldp::laplace::sample_laplace;
use ldp::randomized_response::RandomizedResponse;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn bench_randomized_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/randomized_response");
    let rr = RandomizedResponse::new(PrivacyBudget::new(2.0).expect("valid"));
    for n in [1_000usize, 10_000, 100_000] {
        let truth: Vec<u32> = (0..(n as u32 / 100)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("perturb_list", n), &n, |b, &n| {
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            b.iter(|| criterion::black_box(rr.perturb_neighbor_list(&truth, n, &mut rng).len()));
        });
    }
    group.finish();
}

fn bench_laplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/laplace");
    group.throughput(Throughput::Elements(1));
    group.bench_function("sample", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        b.iter(|| criterion::black_box(sample_laplace(1.5, &mut rng)));
    });
    group.finish();
}

fn bench_exact_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/exact_c2");
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let g = generator::chung_lu_power_law(5_000, 20_000, 100_000, 2.1, &mut rng);
    group.bench_function("count_highest_degree_pair", |b| {
        // Exercise the merge/galloping intersection on the heaviest vertices.
        let mut by_degree: Vec<u32> = (0..g.n_upper() as u32).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(Layer::Upper, v)));
        let (u, w) = (by_degree[0], by_degree[1]);
        b.iter(|| criterion::black_box(common_neighbors::count(&g, Layer::Upper, u, w).unwrap()));
    });
    group.bench_function("jaccard_random_pair", |b| {
        b.iter(|| criterion::black_box(common_neighbors::jaccard(&g, Layer::Upper, 10, 20).unwrap()));
    });
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/graph_build");
    group.sample_size(10);
    let mut rng = ChaCha12Rng::seed_from_u64(4);
    let g = generator::uniform_gnm(10_000, 10_000, 200_000, &mut rng);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("csr_build_200k_edges", |b| {
        b.iter(|| {
            criterion::black_box(
                BipartiteGraph::from_edges(10_000, 10_000, edges.iter().copied())
                    .expect("valid edges")
                    .n_edges(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_randomized_response,
    bench_laplace,
    bench_exact_counting,
    bench_graph_build
);
criterion_main!(benches);

//! Cross-crate integration tests: dataset generation → protocol execution →
//! evaluation, exercising the whole stack the way the paper's experiments do.

use bigraph::{sampling, Layer};
use cne::{
    AlgorithmKind, CentralDP, CommonNeighborEstimator, MultiRDS, MultiRDSBasic, MultiRDSStar,
    MultiRSS, Naive, OneR, Query,
};
use datasets::{Catalog, DatasetCode};
use eval::runner::{evaluate_on_pairs, AlgorithmSelection};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn all_algorithms() -> Vec<Box<dyn CommonNeighborEstimator>> {
    vec![
        Box::new(Naive),
        Box::new(OneR::default()),
        Box::new(MultiRSS::default()),
        Box::new(MultiRDSBasic::default()),
        Box::new(MultiRDS::default()),
        Box::new(MultiRDSStar),
        Box::new(CentralDP),
    ]
}

/// Every algorithm runs end-to-end on a catalog dataset, never exceeds its
/// privacy budget, and reports a coherent transcript.
#[test]
fn every_algorithm_runs_on_catalog_dataset() {
    let dataset = Catalog::scaled(20_000)
        .generate(DatasetCode::AC, 5)
        .expect("AC profile exists");
    let graph = &dataset.graph;
    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let pairs = sampling::uniform_pairs(graph, Layer::Upper, 3, &mut rng).expect("sampleable");

    for algo in all_algorithms() {
        for pair in &pairs {
            let query = Query::new(pair.layer, pair.u, pair.w);
            for eps in [1.0, 2.0] {
                let report = algo
                    .estimate(graph, &query, eps, &mut rng)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", algo.kind()));
                assert_eq!(report.algorithm, algo.kind());
                assert!(report.estimate.is_finite());
                assert!(
                    report.budget.consumed() <= eps + 1e-9,
                    "{} exceeded its budget: {} > {eps}",
                    algo.kind(),
                    report.budget.consumed()
                );
                assert!(report.rounds >= 1);
                assert_eq!(report.epsilon, eps);
                // Local algorithms must exchange messages; the central
                // baseline only releases a single scalar.
                if report.algorithm.is_local() {
                    assert!(report.communication_bytes() > 0);
                } else {
                    assert_eq!(report.communication_bytes(), 8);
                }
            }
        }
    }
}

/// The paper's headline accuracy ordering holds end-to-end on a dataset:
/// Naive ≫ OneR ≫ MultiR-SS ≥ MultiR-DS, and CentralDP beats all local ones.
#[test]
fn accuracy_ordering_matches_paper() {
    let dataset = Catalog::scaled(60_000)
        .generate(DatasetCode::RM, 9)
        .expect("RM profile exists");
    let graph = &dataset.graph;
    let mut rng = ChaCha12Rng::seed_from_u64(2);
    let pairs = sampling::uniform_pairs(graph, Layer::Upper, 40, &mut rng).expect("sampleable");

    let mae = |sel: &AlgorithmSelection| {
        evaluate_on_pairs(graph, &pairs, sel, 2.0, 3)
            .expect("evaluation succeeds")
            .metrics
            .mean_absolute_error
    };
    let naive = mae(&AlgorithmSelection::Naive);
    let oner = mae(&AlgorithmSelection::OneR);
    let ss = mae(&AlgorithmSelection::MultiRSS {
        epsilon1_fraction: 0.5,
    });
    let ds = mae(&AlgorithmSelection::MultiRDS);
    let central = mae(&AlgorithmSelection::CentralDP);

    assert!(
        naive > oner,
        "Naive {naive} should be worse than OneR {oner}"
    );
    assert!(oner > ss, "OneR {oner} should be worse than MultiR-SS {ss}");
    assert!(oner > ds, "OneR {oner} should be worse than MultiR-DS {ds}");
    assert!(
        central < ss,
        "CentralDP {central} should beat MultiR-SS {ss}"
    );
    assert!(
        central < ds,
        "CentralDP {central} should beat MultiR-DS {ds}"
    );
}

/// Estimation is deterministic for a fixed seed and differs across seeds.
#[test]
fn estimates_are_reproducible_under_seeds() {
    let dataset = Catalog::scaled(10_000)
        .generate(DatasetCode::DA, 4)
        .expect("DA profile exists");
    let graph = &dataset.graph;
    let query = Query::new(Layer::Upper, 0, 1);

    for algo in all_algorithms() {
        let mut a = ChaCha12Rng::seed_from_u64(77);
        let mut b = ChaCha12Rng::seed_from_u64(77);
        let mut c = ChaCha12Rng::seed_from_u64(78);
        let ra = algo.estimate(graph, &query, 2.0, &mut a).unwrap().estimate;
        let rb = algo.estimate(graph, &query, 2.0, &mut b).unwrap().estimate;
        let rc = algo.estimate(graph, &query, 2.0, &mut c).unwrap().estimate;
        assert_eq!(ra, rb, "{}: same seed must reproduce", algo.kind());
        if algo.kind() != AlgorithmKind::Naive {
            // Naive's output is a small integer count and may collide across
            // seeds; the continuous estimators should differ.
            assert_ne!(ra, rc, "{}: different seeds should differ", algo.kind());
        }
    }
}

/// Reports serialize to JSON and back without losing the key fields.
#[test]
fn reports_serialize_round_trip() {
    let dataset = Catalog::scaled(10_000)
        .generate(DatasetCode::RM, 6)
        .expect("RM profile exists");
    let graph = &dataset.graph;
    let query = Query::new(Layer::Upper, 0, 1);
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let report = MultiRDS::default()
        .estimate(graph, &query, 2.0, &mut rng)
        .expect("estimation succeeds");
    let json = serde_json::to_string(&report).expect("serializes");
    let back: cne::EstimateReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.algorithm, report.algorithm);
    assert_eq!(back.rounds, report.rounds);
    assert_eq!(
        back.transcript.total_bytes(),
        report.transcript.total_bytes()
    );
    assert!((back.estimate - report.estimate).abs() < 1e-9);
}

/// Invalid inputs are rejected uniformly across the stack.
#[test]
fn invalid_inputs_are_rejected_everywhere() {
    let dataset = Catalog::scaled(10_000)
        .generate(DatasetCode::RM, 8)
        .expect("RM profile exists");
    let graph = &dataset.graph;
    let mut rng = ChaCha12Rng::seed_from_u64(4);
    let out_of_range = Query::new(Layer::Upper, 0, graph.n_upper() as u32 + 10);
    let same_vertex = Query::new(Layer::Upper, 3, 3);
    let valid = Query::new(Layer::Upper, 0, 1);

    for algo in all_algorithms() {
        assert!(algo.estimate(graph, &out_of_range, 2.0, &mut rng).is_err());
        assert!(algo.estimate(graph, &same_vertex, 2.0, &mut rng).is_err());
        assert!(algo.estimate(graph, &valid, 0.0, &mut rng).is_err());
        assert!(algo.estimate(graph, &valid, f64::NAN, &mut rng).is_err());
    }
}

/// The measured communication volume of the RR-based algorithms tracks the
/// analytic expectation `d(1-p) + (n-d)p` for both query vertices.
#[test]
fn communication_matches_expected_noisy_edge_count() {
    let dataset = Catalog::scaled(30_000)
        .generate(DatasetCode::BP, 2)
        .expect("BP profile exists");
    let graph = &dataset.graph;
    let query = Query::new(Layer::Upper, 0, 1);
    let eps = 2.0;
    let mut rng = ChaCha12Rng::seed_from_u64(5);

    let runs = 40;
    let mean_bytes: f64 = (0..runs)
        .map(|_| {
            Naive
                .estimate(graph, &query, eps, &mut rng)
                .expect("estimation succeeds")
                .communication_bytes() as f64
        })
        .sum::<f64>()
        / runs as f64;

    let rr = ldp::RandomizedResponse::new(ldp::PrivacyBudget::new(eps).expect("valid"));
    let n1 = graph.layer_size(Layer::Lower);
    let expected_edges = rr.expected_noisy_edges(graph.degree(Layer::Upper, 0), n1)
        + rr.expected_noisy_edges(graph.degree(Layer::Upper, 1), n1);
    let expected_bytes = expected_edges * 4.0;
    let rel = (mean_bytes - expected_bytes).abs() / expected_bytes;
    assert!(
        rel < 0.15,
        "measured {mean_bytes} bytes vs expected {expected_bytes} (rel {rel})"
    );
}

/// KONECT-style round trip: a generated dataset written to disk and read back
/// yields identical estimates for the same seed.
#[test]
fn edge_list_round_trip_preserves_estimates() {
    let dataset = Catalog::scaled(5_000)
        .generate(DatasetCode::RM, 11)
        .expect("RM profile exists");
    let path = std::env::temp_dir().join(format!("ldp_cne_roundtrip_{}.txt", std::process::id()));
    datasets::io::write_edge_list_file(&dataset.graph, &path).expect("writes");
    let reread = datasets::io::read_edge_list_file(&path).expect("reads");
    std::fs::remove_file(&path).ok();

    let query = Query::new(Layer::Upper, 0, 1);
    let mut rng_a = ChaCha12Rng::seed_from_u64(13);
    let mut rng_b = ChaCha12Rng::seed_from_u64(13);
    let a = OneR::default()
        .estimate(&dataset.graph, &query, 2.0, &mut rng_a)
        .expect("estimation succeeds");
    // The reread graph may have fewer trailing isolated vertices; only compare
    // when the opposite layer kept its size (true when the last vertex has an edge).
    if reread.layer_size(Layer::Lower) == dataset.graph.layer_size(Layer::Lower) {
        let b = OneR::default()
            .estimate(&reread, &query, 2.0, &mut rng_b)
            .expect("estimation succeeds");
        assert_eq!(a.estimate, b.estimate);
    }
}

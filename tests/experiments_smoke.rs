//! Smoke tests that every experiment module (one per paper figure/table) runs
//! end-to-end and produces non-empty, well-formed tables. The shape-level
//! assertions live in each module's own tests; here we only guarantee the
//! whole harness stays runnable from a single entry point.

use eval::experiments::*;

#[test]
fn fig02_distribution_produces_tables() {
    let tables = fig02_distribution::run(&fig02_distribution::Config::smoke());
    assert!(!tables.is_empty());
    assert!(tables.iter().all(|t| !t.columns.is_empty()));
}

#[test]
fn fig05_loss_curves_produces_tables() {
    let tables = fig05_loss_curves::run(&fig05_loss_curves::Config::default());
    assert_eq!(tables.len(), 2);
    assert!(tables.iter().all(|t| t.n_rows() > 0));
}

#[test]
fn fig06_datasets_produces_tables() {
    let tables = fig06_datasets::run(&fig06_datasets::Config::smoke());
    assert_eq!(tables.len(), 2);
    assert!(tables[0].n_rows() > 0);
    assert_eq!(tables[0].n_rows(), tables[1].n_rows());
}

#[test]
fn fig07_epsilon_produces_tables() {
    let tables = fig07_epsilon::run(&fig07_epsilon::Config::smoke());
    assert!(!tables.is_empty());
    assert!(tables[0].n_rows() >= 2);
}

#[test]
fn fig08_budget_produces_tables() {
    let tables = fig08_budget::run(&fig08_budget::Config::smoke());
    assert!(!tables.is_empty());
    assert!(tables[0].n_rows() >= 2);
}

#[test]
fn fig09_imbalance_produces_tables() {
    let tables = fig09_imbalance::run(&fig09_imbalance::Config::smoke());
    assert!(!tables.is_empty());
    assert!(tables[0].n_rows() >= 1);
}

#[test]
fn fig10_communication_produces_tables() {
    let tables = fig10_communication::run(&fig10_communication::Config::smoke());
    assert!(!tables.is_empty());
    assert!(tables[0].n_rows() >= 2);
}

#[test]
fn fig11_scaling_produces_tables() {
    let tables = fig11_scaling::run(&fig11_scaling::Config::smoke());
    assert!(!tables.is_empty());
    assert!(tables[0].n_rows() >= 1);
}

#[test]
fn table2_datasets_produces_tables() {
    let tables = table2_datasets::run(&table2_datasets::Config::smoke());
    assert_eq!(tables.len(), 1);
    assert!(tables[0].n_rows() >= 3);
}

#[test]
fn table3_theory_produces_tables() {
    let tables = table3_theory::run(&table3_theory::Config::smoke());
    assert_eq!(tables.len(), 2);
    assert!(tables.iter().all(|t| t.n_rows() > 0));
}

#[test]
fn tables_render_to_text() {
    for table in table2_datasets::run(&table2_datasets::Config::smoke()) {
        let rendered = table.to_string();
        assert!(rendered.contains("=="));
        assert!(rendered.lines().count() > table.n_rows());
    }
}

//! Property-based cross-crate tests of the privacy and statistical guarantees:
//! budget compliance for arbitrary parameters, unbiasedness, and the
//! theoretical loss relationships (Theorem 9).

use bigraph::{BipartiteGraph, Layer};
use cne::{
    run_detailed, CentralDP, CommonNeighborEstimator, EngineEstimator, MultiRDS, MultiRDSBasic,
    MultiRDSStar, MultiRSS, Naive, OneR, Query,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Builds a random sparse bipartite graph plus a valid query pair.
fn arb_instance() -> impl Strategy<Value = (BipartiteGraph, Query)> {
    (2usize..6, 20usize..120, 0usize..200, any::<u64>()).prop_map(
        |(n_upper, n_lower, extra_edges, seed)| {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            use rand::Rng;
            let mut edges = Vec::new();
            // Guarantee both query vertices have at least one edge.
            edges.push((0u32, 0u32));
            edges.push((1u32, 0u32));
            for _ in 0..extra_edges {
                edges.push((
                    rng.gen_range(0..n_upper) as u32,
                    rng.gen_range(0..n_lower) as u32,
                ));
            }
            let g = BipartiteGraph::from_edges(n_upper, n_lower, edges).expect("edges in range");
            (g, Query::new(Layer::Upper, 0, 1))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No algorithm ever spends more than the requested privacy budget, for
    /// arbitrary graphs, budgets, and parameterisations.
    #[test]
    fn budget_is_never_exceeded(
        (g, query) in arb_instance(),
        epsilon in 0.2f64..5.0,
        fraction in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let algorithms: Vec<Box<dyn EngineEstimator>> = vec![
            Box::new(Naive),
            Box::new(OneR::default()),
            Box::new(MultiRSS::with_fraction(fraction).unwrap()),
            Box::new(MultiRDSBasic::with_fraction(fraction).unwrap()),
            Box::new(MultiRDS::default()),
            Box::new(MultiRDSStar),
            Box::new(CentralDP),
        ];
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for algo in &algorithms {
            // Detailed mode so the per-charge ledger is retained; the
            // default lean mode keeps only the (identical) totals.
            let report = run_detailed(algo.as_ref(), &g, &query, epsilon, &mut rng).unwrap();
            prop_assert!(report.budget.consumed() <= epsilon * (1.0 + 1e-9) + 1e-9);
            prop_assert!(report.estimate.is_finite());
            // Every charge in the accounting is positive and labelled.
            prop_assert!(!report.budget.charges().is_empty());
            for charge in report.budget.charges() {
                prop_assert!(charge.epsilon > 0.0);
                prop_assert!(!charge.label.is_empty());
            }
        }
    }

    /// The chosen MultiR-DS allocation always sums back to the total budget
    /// and its weight stays in [0, 1].
    #[test]
    fn multirds_allocation_is_consistent(
        (g, query) in arb_instance(),
        epsilon in 0.5f64..4.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let report = MultiRDS::default().estimate(&g, &query, epsilon, &mut rng).unwrap();
        let p = report.parameters;
        let e0 = p.epsilon0.unwrap();
        let e1 = p.epsilon1.unwrap();
        let e2 = p.epsilon2.unwrap();
        prop_assert!((e0 + e1 + e2 - epsilon).abs() < 1e-9);
        prop_assert!(e0 > 0.0 && e1 > 0.0 && e2 > 0.0);
        let alpha = p.alpha.unwrap();
        prop_assert!((0.0..=1.0).contains(&alpha));
        prop_assert!(p.degree_u.unwrap() > 0.0);
        prop_assert!(p.degree_w.unwrap() > 0.0);
    }

    /// Theorem 9 (in its analytic form): the optimised double-source loss is
    /// never worse than either single-source loss, for arbitrary degrees and
    /// budgets.
    #[test]
    fn theorem9_optimised_loss_dominates(
        du in 1.0f64..2000.0,
        dw in 1.0f64..2000.0,
        epsilon in 0.5f64..4.0,
    ) {
        let opt = cne::optimizer::optimize_double_source(du, dw, epsilon);
        let half = epsilon / 2.0;
        let ss_u = cne::loss::single_source_l2(du, half, half);
        let ss_w = cne::loss::single_source_l2(dw, half, half);
        prop_assert!(opt.loss <= ss_u.min(ss_w) + 1e-9,
            "optimised {} vs best even-split single source {}", opt.loss, ss_u.min(ss_w));
        // And the analytic loss ordering of Table 3 holds for any n1 >= degrees.
        let n1 = (du.max(dw) as usize) * 4;
        let oner = cne::loss::one_round_l2(n1, du, dw, epsilon);
        prop_assert!(oner > ss_u.min(ss_w) * 0.99 || oner > opt.loss);
    }
}

/// Statistical unbiasedness of the unbiased estimators, end to end: the mean
/// over repeated runs approaches the exact count within Chebyshev-style
/// tolerances derived from the analytic variances.
#[test]
fn unbiased_estimators_center_on_truth() {
    // Fixed, moderately sized instance: deg(u) = 12, deg(w) = 40, overlap 6.
    let edges = (0..12u32)
        .map(|v| (0u32, v))
        .chain((6..46u32).map(|v| (1u32, v)));
    let g = BipartiteGraph::from_edges(2, 800, edges).expect("valid edges");
    let query = Query::new(Layer::Upper, 0, 1);
    let truth = query.exact_count(&g).expect("valid query") as f64;
    assert_eq!(truth, 6.0);
    let eps = 2.0;
    let runs = 700;

    let cases: Vec<(Box<dyn CommonNeighborEstimator>, f64)> = vec![
        (
            Box::new(OneR::default()),
            cne::loss::one_round_l2(800, 12.0, 40.0, eps),
        ),
        (
            Box::new(MultiRSS::default()),
            cne::loss::single_source_l2(12.0, 1.0, 1.0),
        ),
        (
            Box::new(MultiRDSBasic::default()),
            cne::loss::double_source_l2(12.0, 40.0, 0.5, 1.0, 1.0),
        ),
        (Box::new(CentralDP), cne::loss::central_dp_l2(eps)),
    ];
    let mut rng = ChaCha12Rng::seed_from_u64(2024);
    for (algo, variance) in cases {
        let mean: f64 = (0..runs)
            .map(|_| algo.estimate(&g, &query, eps, &mut rng).unwrap().estimate)
            .sum::<f64>()
            / runs as f64;
        let se = (variance / runs as f64).sqrt();
        assert!(
            (mean - truth).abs() < 5.0 * se + 0.05,
            "{}: mean {mean} deviates from truth {truth} (se {se})",
            algo.kind()
        );
    }
}

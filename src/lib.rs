//! # ldp-cne — common neighborhood estimation under edge local differential privacy
//!
//! Meta-crate re-exporting the workspace members so downstream users can add a
//! single dependency:
//!
//! * [`bigraph`] — bipartite graph storage, exact common-neighbor operators,
//!   motifs, sampling,
//! * [`ldp`] — randomized response, Laplace mechanism, privacy-budget
//!   accounting, communication transcripts,
//! * [`datasets`] — synthetic stand-ins for the paper's 15 KONECT datasets and
//!   KONECT edge-list I/O,
//! * [`cne`] — the paper's estimators (`Naive`, `OneR`, `MultiR-SS`,
//!   `MultiR-DS`, variants, and the `CentralDP` baseline),
//! * [`eval`] — the experiment harness regenerating every table and figure of
//!   the paper's evaluation.
//!
//! ```
//! use ldp_cne::cne::{CommonNeighborEstimator, MultiRDS, Query};
//! use ldp_cne::bigraph::{BipartiteGraph, Layer};
//! use rand::SeedableRng;
//!
//! let g = BipartiteGraph::from_edges(2, 50, [(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let report = MultiRDS::default()
//!     .estimate(&g, &Query::new(Layer::Upper, 0, 1), 2.0, &mut rng)
//!     .unwrap();
//! assert!(report.estimate.is_finite());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bigraph;
pub use cne;
pub use datasets;
pub use eval;
pub use ldp;
